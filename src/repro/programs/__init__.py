"""Generated assembly programs: the paper's Keccak implementations."""

from . import (
    keccak32_lmul8,
    keccak64_fused,
    keccak64_lmul1,
    keccak64_lmul41,
    keccak64_lmul8,
    layout,
    scalar_keccak,
    scalar_keccak_interleaved,
)
from .base import DEFAULT_STATE_BASE, KeccakProgram
from .factory import build_program
from .session import RunResult, Session, SessionXof, default_session, run
from .runner import make_processor, run_keccak_program
from .batch_driver import (
    BatchOutcome,
    BatchPermutation,
    BatchSponge,
    batch_sha3_256,
    batch_shake128,
    digest_size,
    hash_messages,
    run_many,
    run_many_report,
    supported_algorithms,
)
from . import sha3_driver
from .sha3_driver import SimulatedPermutation, simulated_sha3_256, simulated_shake128

__all__ = [
    "KeccakProgram",
    "DEFAULT_STATE_BASE",
    "RunResult",
    "Session",
    "SessionXof",
    "run",
    "default_session",
    "run_keccak_program",
    "make_processor",
    "build_program",
    "keccak64_lmul1",
    "keccak64_lmul8",
    "keccak32_lmul8",
    "keccak64_fused",
    "keccak64_lmul41",
    "scalar_keccak",
    "scalar_keccak_interleaved",
    "layout",
    "sha3_driver",
    "SimulatedPermutation",
    "simulated_sha3_256",
    "simulated_shake128",
    "BatchPermutation",
    "BatchSponge",
    "batch_sha3_256",
    "batch_shake128",
    "run_many",
    "run_many_report",
    "hash_messages",
    "digest_size",
    "supported_algorithms",
    "BatchOutcome",
]

