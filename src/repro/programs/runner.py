"""Running generated Keccak programs on the simulator.

Glue between the program generators, the state layouts and the processor:
set up a processor with the right ELEN/EleNum, place the input states (in
the register file directly, or in data memory when the program does its
own vector loads/stores), execute, and read the permuted states back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..keccak.state import KeccakState
from ..sim.cycles import CycleModel, DEFAULT_CYCLE_MODEL
from ..sim.processor import SIMDProcessor
from ..sim.trace import ExecutionStats
from . import layout
from .base import KeccakProgram


@dataclass
class RunResult:
    """Outcome of one program execution."""

    states: List[KeccakState]
    stats: ExecutionStats
    cycles_per_round: float
    permutation_cycles: int

    @property
    def cycles_per_byte(self) -> float:
        """Cycles per state byte over the whole permutation (paper metric)."""
        return self.permutation_cycles / 200.0


def make_processor(program: KeccakProgram, trace: bool = True,
                   cycle_model: CycleModel = DEFAULT_CYCLE_MODEL
                   ) -> SIMDProcessor:
    """Build a processor matching a program's architecture parameters."""
    return SIMDProcessor(
        elen=program.elen,
        elenum=program.elenum,
        cycle_model=cycle_model,
        trace=trace,
    )


def run_keccak_program(
    program: KeccakProgram,
    states: Sequence[KeccakState],
    trace: bool = True,
    cycle_model: CycleModel = DEFAULT_CYCLE_MODEL,
    processor: Optional[SIMDProcessor] = None,
) -> RunResult:
    """Execute ``program`` on ``states``; returns permuted states + metrics.

    The number of states must not exceed ``program.max_states``; remaining
    element slots are left zero (and verified untouched by tests).
    """
    if len(states) > program.max_states:
        raise ValueError(
            f"{program.name} with EleNum={program.elenum} holds at most "
            f"{program.max_states} states, got {len(states)}"
        )
    proc = processor or make_processor(program, trace, cycle_model)
    assembled = program.assemble()
    proc.load_program(assembled)

    uses_memory = program.state_base is not None
    if not states:
        uses_memory = False  # nothing to place or read back
    if uses_memory:
        if program.elen == 64:
            image = layout.memory_image64(states, program.elenum)
        else:
            image = layout.memory_image32(states, program.elenum)
        proc.memory.store_bytes(program.state_base, image)
    elif states:
        if program.elen == 64:
            layout.load_states_regfile64(proc.vector.regfile, states)
        else:
            layout.load_states_regfile32(proc.vector.regfile, states)

    stats = proc.run()

    if not states:
        out = []
    elif uses_memory:
        if program.elen == 64:
            size = 5 * program.elenum * 8
            image = proc.memory.load_bytes(program.state_base, size)
            out = layout.parse_memory_image64(image, program.elenum,
                                              len(states))
        else:
            size = 2 * 5 * program.elenum * 4
            image = proc.memory.load_bytes(program.state_base, size)
            out = layout.parse_memory_image32(image, program.elenum,
                                              len(states))
    else:
        if program.elen == 64:
            out = layout.read_states_regfile64(proc.vector.regfile,
                                               len(states))
        else:
            out = layout.read_states_regfile32(proc.vector.regfile,
                                               len(states))

    rounds = program.num_rounds
    if stats.records is not None:
        body_start = assembled.symbols["round_body"]
        body_end = assembled.symbols["round_end"]
        body_cycles = stats.cycles_in_pc_range(body_start, body_end)
        cycles_per_round = body_cycles / rounds
        loop_start = assembled.symbols["permutation"]
        # Permutation latency: from the first round instruction until the
        # permuted state is ready, i.e. the end of the last round body.
        # The loop-control addi/blt of iterations 1..23 sit between round
        # bodies and count; the final iteration's addi + untaken blt happen
        # after the result is available and do not (this matches the
        # paper's 2564/1892/3620 cycle totals exactly).
        in_loop = [r for r in stats.records
                   if loop_start <= r.pc < body_end + 8]
        final_overhead = sum(r.cycles for r in in_loop[-2:]
                             if r.pc >= body_end)
        permutation_cycles = sum(r.cycles for r in in_loop) - final_overhead
    else:
        cycles_per_round = stats.cycles / rounds
        permutation_cycles = stats.cycles
    return RunResult(
        states=out,
        stats=stats,
        cycles_per_round=cycles_per_round,
        permutation_cycles=permutation_cycles,
    )
