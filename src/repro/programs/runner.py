"""Legacy entry points for running generated Keccak programs.

The execution logic lives in :mod:`repro.programs.session`; this module
keeps the original seed API as thin wrappers.  New code should use
``repro.run`` / :class:`repro.Session` directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..keccak.state import KeccakState
from ..sim.cycles import CycleModel, DEFAULT_CYCLE_MODEL
from ..sim.processor import SIMDProcessor
from .base import KeccakProgram
from .session import RunResult, _check_capacity, _execute, default_session

__all__ = ["RunResult", "make_processor", "run_keccak_program"]


def make_processor(program: KeccakProgram, trace: bool = True,
                   cycle_model: CycleModel = DEFAULT_CYCLE_MODEL
                   ) -> SIMDProcessor:
    """Build a processor matching a program's architecture parameters."""
    return SIMDProcessor(
        elen=program.elen,
        elenum=program.elenum,
        cycle_model=cycle_model,
        trace=trace,
    )


def run_keccak_program(
    program: KeccakProgram,
    states: Sequence[KeccakState],
    trace: bool = True,
    cycle_model: CycleModel = DEFAULT_CYCLE_MODEL,
    processor: Optional[SIMDProcessor] = None,
) -> RunResult:
    """Execute ``program`` on ``states``; returns permuted states + metrics.

    The number of states must not exceed ``program.max_states``; remaining
    element slots are left zero (and verified untouched by tests).

    Without an explicit ``processor`` the run goes through the shared
    default :class:`~repro.programs.session.Session`, so repeated calls
    with the same program reuse one processor and its predecoded program.
    A caller-supplied ``processor`` is used as-is — no reset, no session —
    preserving the original semantics (``trace``/``cycle_model`` are then
    properties of that processor, not of this call).
    """
    _check_capacity(program, states)
    if processor is not None:
        return _execute(processor, program, states)
    return default_session(cycle_model).run(program, states, trace=trace)
