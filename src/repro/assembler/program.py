"""The assembled-program container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class AssembledInstruction:
    """One encoded instruction with its provenance."""

    address: int
    word: int
    mnemonic: str
    source_line: int
    source_text: str


@dataclass
class Program:
    """An assembled program: words plus symbols and source mapping."""

    base_address: int = 0
    instructions: List[AssembledInstruction] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def words(self) -> List[int]:
        """The raw 32-bit instruction words in address order."""
        return [inst.word for inst in self.instructions]

    @property
    def size_bytes(self) -> int:
        """Program footprint in bytes."""
        return 4 * len(self.instructions)

    def word_at(self, address: int) -> Optional[int]:
        """The instruction word at ``address``, or None if outside."""
        index, remainder = divmod(address - self.base_address, 4)
        if remainder or not 0 <= index < len(self.instructions):
            return None
        return self.instructions[index].word

    def to_bytes(self) -> bytes:
        """Serialize as little-endian machine code."""
        return b"".join(inst.word.to_bytes(4, "little")
                        for inst in self.instructions)

    def listing(self) -> str:
        """A human-readable listing (address, word, source)."""
        lines = []
        for inst in self.instructions:
            lines.append(
                f"{inst.address:08x}:  {inst.word:08x}  {inst.source_text.strip()}"
            )
        return "\n".join(lines)
