"""Constant-expression evaluation for immediates.

Supports integer literals in decimal/hex/binary/octal, symbol references
(``.equ`` constants and labels), unary ``+``/``-``/``~``, and the binary
operators ``+ - * << >> & | ^`` with conventional precedence and
parentheses.  Evaluation is a small recursive-descent parser — no ``eval``.
"""

from __future__ import annotations

import re
from typing import Mapping

from .errors import OperandError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|0[oO][0-7]+|\d+)"
    r"|(?P<sym>[A-Za-z_.$][A-Za-z0-9_.$]*)"
    r"|(?P<op><<|>>|[-+*&|^~()]))"
)


def _tokenize(text: str):
    pos = 0
    tokens = []
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise OperandError(f"cannot parse expression near {remainder!r}")
        tokens.append(match)
        pos = match.end()
    return tokens


class _Parser:
    """Precedence-climbing parser over the token list."""

    _BINARY_PRECEDENCE = {
        "|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4,
        "+": 5, "-": 5, "*": 6,
    }

    def __init__(self, tokens, symbols: Mapping[str, int], source: str):
        self._tokens = tokens
        self._index = 0
        self._symbols = symbols
        self._source = source

    def parse(self) -> int:
        value = self._expression(0)
        if self._index != len(self._tokens):
            raise OperandError(
                f"trailing tokens in expression: {self._source!r}"
            )
        return value

    def _peek_op(self):
        if self._index < len(self._tokens):
            token = self._tokens[self._index]
            if token.lastgroup == "op":
                return token.group("op")
        return None

    def _expression(self, min_precedence: int) -> int:
        left = self._unary()
        while True:
            op = self._peek_op()
            precedence = self._BINARY_PRECEDENCE.get(op or "", -1)
            if op is None or precedence < min_precedence:
                return left
            self._index += 1
            right = self._expression(precedence + 1)
            left = self._apply(op, left, right)

    def _apply(self, op: str, left: int, right: int) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        raise OperandError(f"unknown operator {op!r}")

    def _unary(self) -> int:
        if self._index >= len(self._tokens):
            raise OperandError(
                f"unexpected end of expression: {self._source!r}"
            )
        token = self._tokens[self._index]
        if token.lastgroup == "op":
            op = token.group("op")
            if op in ("+", "-", "~"):
                self._index += 1
                value = self._unary()
                if op == "-":
                    return -value
                if op == "~":
                    return ~value
                return value
            if op == "(":
                self._index += 1
                value = self._expression(0)
                closing = self._peek_op()
                if closing != ")":
                    raise OperandError(
                        f"missing ')' in expression: {self._source!r}"
                    )
                self._index += 1
                return value
            raise OperandError(f"unexpected operator {op!r} in expression")
        self._index += 1
        if token.lastgroup == "num":
            return int(token.group("num"), 0)
        name = token.group("sym")
        if name not in self._symbols:
            raise OperandError(f"undefined symbol {name!r}")
        return self._symbols[name]


def evaluate(text: str, symbols: Mapping[str, int] | None = None) -> int:
    """Evaluate a constant expression against a symbol table."""
    tokens = _tokenize(text)
    if not tokens:
        raise OperandError(f"empty expression: {text!r}")
    return _Parser(tokens, symbols or {}, text).parse()


def is_plain_integer(text: str) -> bool:
    """True if ``text`` is a bare integer literal (no symbols/operators)."""
    try:
        int(text.strip(), 0)
        return True
    except ValueError:
        return False
