"""Disassembler: 32-bit words back to canonical assembly text."""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..isa import ISA, decode_operands, render_vtype
from ..isa.registers import scalar_register_name, vector_register_name
from ..isa.spec import InstructionSet, InstructionSpec


def _mask_suffix(ops) -> str:
    return ", v0.t" if ops.get("vm", 1) == 0 else ""


def _render(spec: InstructionSpec, ops, address: int) -> str:
    fmt = spec.fmt
    x = scalar_register_name
    v = vector_register_name
    if fmt == "r":
        return f"{spec.mnemonic} {x(ops['rd'])}, {x(ops['rs1'])}, {x(ops['rs2'])}"
    if fmt == "i":
        return f"{spec.mnemonic} {x(ops['rd'])}, {x(ops['rs1'])}, {ops['imm']}"
    if fmt == "i_shift":
        return f"{spec.mnemonic} {x(ops['rd'])}, {x(ops['rs1'])}, {ops['shamt']}"
    if fmt == "load":
        return f"{spec.mnemonic} {x(ops['rd'])}, {ops['imm']}({x(ops['rs1'])})"
    if fmt == "store":
        return f"{spec.mnemonic} {x(ops['rs2'])}, {ops['imm']}({x(ops['rs1'])})"
    if fmt == "branch":
        target = address + ops["offset"]
        return (f"{spec.mnemonic} {x(ops['rs1'])}, {x(ops['rs2'])}, "
                f"{target:#x}")
    if fmt == "u":
        return f"{spec.mnemonic} {x(ops['rd'])}, {ops['imm']:#x}"
    if fmt == "jal":
        target = address + ops["offset"]
        return f"{spec.mnemonic} {x(ops['rd'])}, {target:#x}"
    if fmt == "jalr":
        return f"{spec.mnemonic} {x(ops['rd'])}, {ops['imm']}({x(ops['rs1'])})"
    if fmt == "system":
        return spec.mnemonic
    if fmt == "csr":
        from ..isa.csr import csr_name

        return (f"{spec.mnemonic} {x(ops['rd'])}, {csr_name(ops['csr'])}, "
                f"{x(ops['rs1'])}")
    if fmt == "vsetvli":
        return (f"{spec.mnemonic} {x(ops['rd'])}, {x(ops['rs1'])}, "
                f"{render_vtype(ops['vtype'])}")
    if fmt == "vls_unit":
        return (f"{spec.mnemonic} {v(ops['vd'])}, ({x(ops['rs1'])})"
                f"{_mask_suffix(ops)}")
    if fmt == "vls_strided":
        return (f"{spec.mnemonic} {v(ops['vd'])}, ({x(ops['rs1'])}), "
                f"{x(ops['rs2'])}{_mask_suffix(ops)}")
    if fmt == "vls_indexed":
        return (f"{spec.mnemonic} {v(ops['vd'])}, ({x(ops['rs1'])}), "
                f"{v(ops['vs2'])}{_mask_suffix(ops)}")
    if fmt == "v_vv":
        return (f"{spec.mnemonic} {v(ops['vd'])}, {v(ops['vs2'])}, "
                f"{v(ops['vs1'])}{_mask_suffix(ops)}")
    if fmt == "v_vx":
        return (f"{spec.mnemonic} {v(ops['vd'])}, {v(ops['vs2'])}, "
                f"{x(ops['rs1'])}{_mask_suffix(ops)}")
    if fmt == "v_vi":
        return (f"{spec.mnemonic} {v(ops['vd'])}, {v(ops['vs2'])}, "
                f"{ops['imm']}{_mask_suffix(ops)}")
    raise ValueError(f"unhandled format {fmt!r}")


def disassemble_word(word: int, address: int = 0,
                     isa: Optional[InstructionSet] = None) -> str:
    """Disassemble one 32-bit instruction word.

    Branch and jump targets are rendered as absolute hex addresses using
    ``address``; unknown words render as ``.word``.
    """
    registry = isa or ISA
    try:
        spec = registry.find(word)
    except LookupError:
        return f".word {word:#010x}"
    ops = decode_operands(word, spec)
    return _render(spec, ops, address)


def disassemble(words: Iterable[int], base_address: int = 0,
                isa: Optional[InstructionSet] = None) -> List[str]:
    """Disassemble a sequence of words starting at ``base_address``."""
    out = []
    address = base_address
    for word in words:
        out.append(disassemble_word(word, address, isa))
        address += 4
    return out
