"""Mapping assembly operand tokens to instruction-field dictionaries.

Each instruction format has a matching operand convention; this module
turns the comma-separated token list of one statement into the operand
dictionary :func:`repro.isa.formats.encode_instruction` expects.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping

from ..isa import parse_vtype_tokens
from ..isa.registers import (
    is_scalar_register,
    is_vector_register,
    parse_scalar_register,
    parse_vector_register,
)
from ..isa.spec import InstructionSpec
from .errors import OperandError
from .expressions import evaluate

_MEM_RE = re.compile(r"^(?P<offset>[^()]*)\((?P<base>[^()]+)\)$")

#: The operand token that enables masking (RVV: mask register v0, true bits).
MASK_TOKEN = "v0.t"


def parse_memory_operand(token: str, symbols: Mapping[str, int]) -> Dict[str, int]:
    """Parse ``imm(reg)`` / ``(reg)`` into ``{"imm": ..., "rs1": ...}``."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise OperandError(f"expected memory operand 'imm(reg)', got {token!r}")
    base = match.group("base").strip()
    if not is_scalar_register(base):
        raise OperandError(f"memory base must be a scalar register: {token!r}")
    offset_text = match.group("offset").strip()
    offset = evaluate(offset_text, symbols) if offset_text else 0
    return {"imm": offset, "rs1": parse_scalar_register(base)}


def _take_mask(tokens: List[str]) -> int:
    """Pop a trailing ``v0.t`` mask token; return the vm bit (1=unmasked)."""
    if tokens and tokens[-1].strip().lower() == MASK_TOKEN:
        tokens.pop()
        return 0
    return 1


def _scalar(token: str) -> int:
    if not is_scalar_register(token):
        raise OperandError(f"expected a scalar register, got {token!r}")
    return parse_scalar_register(token)


def _vector(token: str) -> int:
    if not is_vector_register(token):
        raise OperandError(f"expected a vector register, got {token!r}")
    return parse_vector_register(token)


def _expect_count(spec: InstructionSpec, tokens: List[str], count: int) -> None:
    if len(tokens) != count:
        raise OperandError(
            f"{spec.mnemonic} expects {count} operand(s), got {len(tokens)}: "
            f"{tokens}"
        )


def build_operands(
    spec: InstructionSpec,
    tokens: List[str],
    symbols: Mapping[str, int],
    address: int,
) -> Dict[str, int]:
    """Build the operand dict for ``spec`` from assembly ``tokens``.

    ``address`` is the instruction's own address, used to turn label targets
    into pc-relative branch/jump offsets.
    """
    tokens = [t.strip() for t in tokens]
    fmt = spec.fmt

    if fmt == "r":
        _expect_count(spec, tokens, 3)
        return {"rd": _scalar(tokens[0]), "rs1": _scalar(tokens[1]),
                "rs2": _scalar(tokens[2])}

    if fmt == "i":
        _expect_count(spec, tokens, 3)
        return {"rd": _scalar(tokens[0]), "rs1": _scalar(tokens[1]),
                "imm": evaluate(tokens[2], symbols)}

    if fmt == "i_shift":
        _expect_count(spec, tokens, 3)
        return {"rd": _scalar(tokens[0]), "rs1": _scalar(tokens[1]),
                "shamt": evaluate(tokens[2], symbols)}

    if fmt == "load":
        _expect_count(spec, tokens, 2)
        mem = parse_memory_operand(tokens[1], symbols)
        return {"rd": _scalar(tokens[0]), **mem}

    if fmt == "store":
        _expect_count(spec, tokens, 2)
        mem = parse_memory_operand(tokens[1], symbols)
        return {"rs2": _scalar(tokens[0]), **mem}

    if fmt == "branch":
        _expect_count(spec, tokens, 3)
        target = evaluate(tokens[2], symbols)
        return {"rs1": _scalar(tokens[0]), "rs2": _scalar(tokens[1]),
                "offset": target - address}

    if fmt == "u":
        _expect_count(spec, tokens, 2)
        return {"rd": _scalar(tokens[0]), "imm": evaluate(tokens[1], symbols)}

    if fmt == "jal":
        _expect_count(spec, tokens, 2)
        target = evaluate(tokens[1], symbols)
        return {"rd": _scalar(tokens[0]), "offset": target - address}

    if fmt == "jalr":
        # Accept both "jalr rd, imm(rs1)" and "jalr rd, rs1, imm".
        if len(tokens) == 2:
            mem = parse_memory_operand(tokens[1], symbols)
            return {"rd": _scalar(tokens[0]), **mem}
        _expect_count(spec, tokens, 3)
        return {"rd": _scalar(tokens[0]), "rs1": _scalar(tokens[1]),
                "imm": evaluate(tokens[2], symbols)}

    if fmt == "system":
        _expect_count(spec, tokens, 0)
        return {}

    if fmt == "csr":
        from ..isa.csr import parse_csr

        _expect_count(spec, tokens, 3)
        try:
            csr = parse_csr(tokens[1])
        except ValueError as exc:
            raise OperandError(str(exc)) from exc
        return {"rd": _scalar(tokens[0]), "csr": csr,
                "rs1": _scalar(tokens[2])}

    if fmt == "vsetvli":
        # vsetvli rd, rs1, e64, m1, tu, mu — all tokens after rs1 are vtype.
        if len(tokens) < 4:
            raise OperandError(
                f"vsetvli expects rd, rs1 and vtype tokens, got {tokens}"
            )
        vtype = parse_vtype_tokens(tokens[2:])
        return {"rd": _scalar(tokens[0]), "rs1": _scalar(tokens[1]),
                "vtype": vtype}

    if fmt == "vls_unit":
        work = list(tokens)
        vm = _take_mask(work)
        _expect_count(spec, work, 2)
        mem = parse_memory_operand(work[1], symbols)
        if mem["imm"] != 0:
            raise OperandError(
                f"{spec.mnemonic} takes no address offset, got {work[1]!r}"
            )
        return {"vd": _vector(work[0]), "rs1": mem["rs1"], "vm": vm}

    if fmt == "vls_strided":
        work = list(tokens)
        vm = _take_mask(work)
        _expect_count(spec, work, 3)
        mem = parse_memory_operand(work[1], symbols)
        if mem["imm"] != 0:
            raise OperandError(
                f"{spec.mnemonic} takes no address offset, got {work[1]!r}"
            )
        return {"vd": _vector(work[0]), "rs1": mem["rs1"],
                "rs2": _scalar(work[2]), "vm": vm}

    if fmt == "vls_indexed":
        work = list(tokens)
        vm = _take_mask(work)
        _expect_count(spec, work, 3)
        mem = parse_memory_operand(work[1], symbols)
        if mem["imm"] != 0:
            raise OperandError(
                f"{spec.mnemonic} takes no address offset, got {work[1]!r}"
            )
        return {"vd": _vector(work[0]), "rs1": mem["rs1"],
                "vs2": _vector(work[2]), "vm": vm}

    if fmt == "v_vv":
        work = list(tokens)
        vm = _take_mask(work)
        _expect_count(spec, work, 3)
        return {"vd": _vector(work[0]), "vs2": _vector(work[1]),
                "vs1": _vector(work[2]), "vm": vm}

    if fmt == "v_vx":
        work = list(tokens)
        vm = _take_mask(work)
        _expect_count(spec, work, 3)
        return {"vd": _vector(work[0]), "vs2": _vector(work[1]),
                "rs1": _scalar(work[2]), "vm": vm}

    if fmt == "v_vi":
        work = list(tokens)
        vm = _take_mask(work)
        _expect_count(spec, work, 3)
        return {"vd": _vector(work[0]), "vs2": _vector(work[1]),
                "imm": evaluate(work[2], symbols), "vm": vm}

    raise OperandError(f"unhandled instruction format: {fmt!r}")
