"""Pseudo-instruction expansion.

Expansions are purely textual (token rewriting), performed before encoding.
Every expansion has a fixed instruction count so that label addresses can be
resolved in the first pass.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from .errors import OperandError
from .expressions import evaluate

#: (mnemonic, operand tokens) — one expanded machine instruction.
Expanded = Tuple[str, List[str]]


def _one(mnemonic: str, *operands: str) -> List[Expanded]:
    return [(mnemonic, list(operands))]


def _expand_li(tokens: List[str], symbols: Mapping[str, int]) -> List[Expanded]:
    if len(tokens) != 2:
        raise OperandError(f"li expects rd, imm — got {tokens}")
    rd = tokens[0]
    value = evaluate(tokens[1], symbols)
    if not -(1 << 31) <= value < (1 << 32):
        raise OperandError(f"li immediate out of 32-bit range: {value}")
    value &= 0xFFFFFFFF
    signed = value - (1 << 32) if value >= (1 << 31) else value
    if -2048 <= signed <= 2047:
        return _one("addi", rd, "x0", str(signed))
    upper = (value + 0x800) >> 12
    lower = value - (upper << 12)
    lower = lower - (1 << 32) if lower >= (1 << 31) else lower
    out = _one("lui", rd, str(upper & 0xFFFFF))
    if lower != 0:
        out += _one("addi", rd, rd, str(lower))
    else:
        # Keep the expansion size fixed so pass-1 addresses stay valid.
        out += _one("addi", rd, rd, "0")
    return out


def _expand_la(tokens: List[str], symbols: Mapping[str, int]) -> List[Expanded]:
    if len(tokens) != 2:
        raise OperandError(f"la expects rd, symbol — got {tokens}")
    # Addresses are absolute in the simulator's flat memory, so la == li.
    return _expand_li(tokens, symbols)


def _fixed(mnemonic_map):
    def expand(tokens: List[str], symbols: Mapping[str, int]) -> List[Expanded]:
        return mnemonic_map(tokens)
    return expand


def _expand_mv(tokens):
    if len(tokens) != 2:
        raise OperandError(f"mv expects rd, rs — got {tokens}")
    return _one("addi", tokens[0], tokens[1], "0")


def _expand_not(tokens):
    if len(tokens) != 2:
        raise OperandError(f"not expects rd, rs — got {tokens}")
    return _one("xori", tokens[0], tokens[1], "-1")


def _expand_neg(tokens):
    if len(tokens) != 2:
        raise OperandError(f"neg expects rd, rs — got {tokens}")
    return _one("sub", tokens[0], "x0", tokens[1])


def _expand_nop(tokens):
    if tokens:
        raise OperandError(f"nop takes no operands — got {tokens}")
    return _one("addi", "x0", "x0", "0")


def _expand_j(tokens):
    if len(tokens) != 1:
        raise OperandError(f"j expects a target — got {tokens}")
    return _one("jal", "x0", tokens[0])


def _expand_jr(tokens):
    if len(tokens) != 1:
        raise OperandError(f"jr expects rs — got {tokens}")
    return _one("jalr", "x0", tokens[0], "0")


def _expand_ret(tokens):
    if tokens:
        raise OperandError(f"ret takes no operands — got {tokens}")
    return _one("jalr", "x0", "ra", "0")


def _expand_call(tokens):
    if len(tokens) != 1:
        raise OperandError(f"call expects a target — got {tokens}")
    return _one("jal", "ra", tokens[0])


def _expand_bgt(tokens):
    if len(tokens) != 3:
        raise OperandError(f"bgt expects rs, rt, target — got {tokens}")
    return _one("blt", tokens[1], tokens[0], tokens[2])


def _expand_ble(tokens):
    if len(tokens) != 3:
        raise OperandError(f"ble expects rs, rt, target — got {tokens}")
    return _one("bge", tokens[1], tokens[0], tokens[2])


def _expand_beqz(tokens):
    if len(tokens) != 2:
        raise OperandError(f"beqz expects rs, target — got {tokens}")
    return _one("beq", tokens[0], "x0", tokens[1])


def _expand_bnez(tokens):
    if len(tokens) != 2:
        raise OperandError(f"bnez expects rs, target — got {tokens}")
    return _one("bne", tokens[0], "x0", tokens[1])


def _expand_csrr(tokens):
    if len(tokens) != 2:
        raise OperandError(f"csrr expects rd, csr — got {tokens}")
    return _one("csrrs", tokens[0], tokens[1], "x0")


def _expand_csrw(tokens):
    if len(tokens) != 2:
        raise OperandError(f"csrw expects csr, rs — got {tokens}")
    return _one("csrrw", "x0", tokens[0], tokens[1])


def _expand_rdcycle(tokens):
    if len(tokens) != 1:
        raise OperandError(f"rdcycle expects rd — got {tokens}")
    return _one("csrrs", tokens[0], "cycle", "x0")


def _expand_rdinstret(tokens):
    if len(tokens) != 1:
        raise OperandError(f"rdinstret expects rd — got {tokens}")
    return _one("csrrs", tokens[0], "instret", "x0")


def _expand_vmv(tokens):
    if len(tokens) != 2:
        raise OperandError(f"vmv.v.v expects vd, vs — got {tokens}")
    return _one("vadd.vi", tokens[0], tokens[1], "0")


def _expand_vnot(tokens):
    if len(tokens) != 2:
        raise OperandError(f"vnot.v expects vd, vs — got {tokens}")
    return _one("vxor.vi", tokens[0], tokens[1], "-1")


_SYMBOLIC = {
    "li": _expand_li,
    "la": _expand_la,
}

_SIMPLE = {
    "mv": _expand_mv,
    "not": _expand_not,
    "neg": _expand_neg,
    "nop": _expand_nop,
    "j": _expand_j,
    "jr": _expand_jr,
    "ret": _expand_ret,
    "call": _expand_call,
    "bgt": _expand_bgt,
    "ble": _expand_ble,
    "beqz": _expand_beqz,
    "bnez": _expand_bnez,
    "vmv.v.v": _expand_vmv,
    "vnot.v": _expand_vnot,
    "csrr": _expand_csrr,
    "csrw": _expand_csrw,
    "rdcycle": _expand_rdcycle,
    "rdinstret": _expand_rdinstret,
}

#: All pseudo-instruction mnemonics.
PSEUDO_MNEMONICS = tuple(sorted(set(_SYMBOLIC) | set(_SIMPLE)))


def is_pseudo(mnemonic: str) -> bool:
    """True if ``mnemonic`` names a pseudo-instruction."""
    return mnemonic in _SYMBOLIC or mnemonic in _SIMPLE


def expand_pseudo(
    mnemonic: str, tokens: List[str], symbols: Mapping[str, int]
) -> List[Expanded]:
    """Expand one pseudo-instruction into real instructions."""
    if mnemonic in _SYMBOLIC:
        return _SYMBOLIC[mnemonic](tokens, symbols)
    if mnemonic in _SIMPLE:
        return _SIMPLE[mnemonic](tokens)
    raise OperandError(f"not a pseudo-instruction: {mnemonic!r}")


def pseudo_size(mnemonic: str, tokens: List[str],
                symbols: Mapping[str, int]) -> int:
    """Number of machine instructions ``mnemonic`` expands to.

    Needed by pass 1 to lay out addresses before labels are resolvable.
    ``li``/``la`` immediates must therefore be constant expressions over
    ``.equ`` symbols (labels in ``li`` are not supported — by design).
    """
    return len(expand_pseudo(mnemonic, tokens, symbols))
