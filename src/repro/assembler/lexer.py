"""Line-level lexing of assembly source.

Splits a source line into a label, a mnemonic/directive and its operand
tokens.  Comments start with ``#``, ``//`` or ``;``.  Operands are
comma-separated at the top level; parentheses (memory operands like
``8(sp)``) keep their contents together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .errors import AssemblyError

_COMMENT_MARKERS = ("#", "//", ";")


@dataclass
class Line:
    """One lexed source line."""

    number: int
    raw: str
    label: Optional[str] = None
    mnemonic: Optional[str] = None
    operands: List[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True if the line holds neither a label nor an instruction."""
        return self.label is None and self.mnemonic is None

    @property
    def is_directive(self) -> bool:
        """True if the line's mnemonic is an assembler directive."""
        return self.mnemonic is not None and self.mnemonic.startswith(".")


def strip_comment(text: str) -> str:
    """Remove any trailing comment from a line."""
    for marker in _COMMENT_MARKERS:
        index = text.find(marker)
        if index != -1:
            text = text[:index]
    return text


def split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas.

    Commas inside parentheses do not split (no current operand syntax puts
    commas there, but this keeps the lexer robust to extensions).
    """
    operands: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise AssemblyError(f"unbalanced ')' in operands: {text!r}")
            current.append(ch)
        elif ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise AssemblyError(f"unbalanced '(' in operands: {text!r}")
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    if any(not op for op in operands):
        raise AssemblyError(f"empty operand in: {text!r}")
    return operands


def lex_line(number: int, raw: str) -> Line:
    """Lex one source line into a :class:`Line`."""
    line = Line(number=number, raw=raw)
    text = strip_comment(raw).strip()
    if not text:
        return line

    colon = text.find(":")
    if colon != -1:
        candidate = text[:colon].strip()
        if candidate and _is_identifier(candidate):
            line.label = candidate
            text = text[colon + 1 :].strip()
    if not text:
        return line

    parts = text.split(None, 1)
    line.mnemonic = parts[0].lower()
    if len(parts) == 2:
        try:
            line.operands = split_operands(parts[1])
        except AssemblyError as exc:
            raise AssemblyError(exc.message, number, raw) from exc
    return line


def lex(source: str) -> List[Line]:
    """Lex a whole source text into non-empty lines."""
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        line = lex_line(number, raw)
        if not line.is_empty:
            lines.append(line)
    return lines


def _is_identifier(text: str) -> bool:
    if not text:
        return False
    head, *rest = text
    if not (head.isalpha() or head in "._"):
        return False
    return all(ch.isalnum() or ch in "._$" for ch in rest)
