"""Assembler error types carrying source locations."""

from __future__ import annotations


class AssemblyError(Exception):
    """An error in assembly source, with file/line context when known."""

    def __init__(self, message: str, line_number: int | None = None,
                 source_line: str | None = None) -> None:
        self.message = message
        self.line_number = line_number
        self.source_line = source_line
        location = f"line {line_number}: " if line_number is not None else ""
        context = f"\n    {source_line.strip()}" if source_line else ""
        super().__init__(f"{location}{message}{context}")


class SymbolError(AssemblyError):
    """An undefined or redefined symbol."""


class OperandError(AssemblyError):
    """A malformed or out-of-range operand."""
