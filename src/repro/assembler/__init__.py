"""Two-pass assembler and disassembler for the SIMD processor's ISA."""

from .assembler import Assembler, assemble
from .disassembler import disassemble, disassemble_word
from .errors import AssemblyError, OperandError, SymbolError
from .expressions import evaluate
from .lexer import Line, lex, lex_line
from .program import AssembledInstruction, Program
from .pseudo import PSEUDO_MNEMONICS, expand_pseudo, is_pseudo

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "disassemble_word",
    "AssemblyError",
    "OperandError",
    "SymbolError",
    "evaluate",
    "Line",
    "lex",
    "lex_line",
    "Program",
    "AssembledInstruction",
    "PSEUDO_MNEMONICS",
    "expand_pseudo",
    "is_pseudo",
]
