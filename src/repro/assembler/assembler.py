"""Two-pass assembler for the SIMD processor's ISA.

Pass 1 lays out addresses (expanding pseudo-instructions to fixed sizes and
collecting labels and ``.equ`` constants); pass 2 encodes every instruction
through the shared :data:`repro.isa.ISA` table.

Supported directives:

``.equ NAME, expr``
    Define a constant (usable in later expressions).
``.org address``
    Move the location counter forward (gap filled with ``nop``).
``.align n``
    Align to ``2**n`` bytes (gap filled with ``nop``).
``.word expr[, expr...]``
    Emit raw 32-bit words (e.g. data tables in program memory).
``.text`` / ``.globl NAME``
    Accepted and ignored (for compatibility with GNU-style sources).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import ISA, encode_instruction
from ..isa.custom import CUSTOM_ALIASES
from ..isa.encoding import EncodingError
from ..isa.spec import InstructionSet
from .errors import AssemblyError, OperandError, SymbolError
from .expressions import evaluate
from .lexer import Line, lex
from .operands import build_operands
from .program import AssembledInstruction, Program
from .pseudo import expand_pseudo, is_pseudo

_IGNORED_DIRECTIVES = {".text", ".data", ".globl", ".global", ".section"}


class Assembler:
    """A reusable two-pass assembler over a given instruction set."""

    def __init__(self, isa: InstructionSet = ISA) -> None:
        self._isa = isa

    # -- public API -------------------------------------------------------------

    def assemble(self, source: str, base_address: int = 0) -> Program:
        """Assemble ``source`` into a :class:`Program` at ``base_address``."""
        lines = lex(source)
        symbols = self._pass_one(lines, base_address)
        return self._pass_two(lines, base_address, symbols)

    # -- pass 1: layout ----------------------------------------------------------

    def _pass_one(self, lines: List[Line], base: int) -> Dict[str, int]:
        symbols: Dict[str, int] = {}
        address = base
        for line in lines:
            if line.label is not None:
                if line.label in symbols:
                    raise SymbolError(
                        f"label redefined: {line.label!r}",
                        line.number, line.raw,
                    )
                symbols[line.label] = address
            if line.mnemonic is None:
                continue
            address = self._advance(line, address, symbols)
        return symbols

    def _advance(self, line: Line, address: int,
                 symbols: Dict[str, int]) -> int:
        mnemonic = line.mnemonic
        assert mnemonic is not None
        try:
            if line.is_directive:
                return self._directive_size(line, address, symbols,
                                            define=True)
            if is_pseudo(mnemonic):
                expanded = expand_pseudo(mnemonic, line.operands, symbols)
                return address + 4 * len(expanded)
            self._resolve_spec(line)  # validate mnemonic early
            return address + 4
        except AssemblyError:
            raise
        except (ValueError, KeyError) as exc:
            raise AssemblyError(str(exc), line.number, line.raw) from exc

    def _directive_size(self, line: Line, address: int,
                        symbols: Dict[str, int], define: bool) -> int:
        name = line.mnemonic
        assert name is not None
        if name in _IGNORED_DIRECTIVES:
            return address
        if name == ".equ":
            if len(line.operands) != 2:
                raise AssemblyError(
                    ".equ expects NAME, value", line.number, line.raw
                )
            if define:
                symbol = line.operands[0]
                if symbol in symbols:
                    raise SymbolError(
                        f"symbol redefined: {symbol!r}", line.number, line.raw
                    )
                symbols[symbol] = evaluate(line.operands[1], symbols)
            return address
        if name == ".org":
            target = evaluate(line.operands[0], symbols)
            if target < address:
                raise AssemblyError(
                    f".org cannot move backwards ({target:#x} < {address:#x})",
                    line.number, line.raw,
                )
            return target
        if name == ".align":
            power = evaluate(line.operands[0], symbols)
            step = 1 << power
            return (address + step - 1) & ~(step - 1)
        if name == ".word":
            return address + 4 * len(line.operands)
        if name == ".zero":
            count = evaluate(line.operands[0], symbols)
            if count % 4:
                raise AssemblyError(
                    ".zero size must be word-aligned in program memory",
                    line.number, line.raw,
                )
            return address + count
        raise AssemblyError(f"unknown directive: {name}", line.number, line.raw)

    # -- pass 2: encoding ----------------------------------------------------------

    def _pass_two(self, lines: List[Line], base: int,
                  symbols: Dict[str, int]) -> Program:
        program = Program(base_address=base, symbols=dict(symbols))
        address = base
        for line in lines:
            if line.mnemonic is None:
                continue
            if line.is_directive:
                address = self._emit_directive(program, line, address, symbols)
                continue
            try:
                address = self._emit_instruction(program, line, address,
                                                 symbols)
            except AssemblyError:
                raise
            except (EncodingError, OperandError, ValueError, KeyError) as exc:
                raise AssemblyError(str(exc), line.number, line.raw) from exc
        return program

    def _emit_directive(self, program: Program, line: Line, address: int,
                        symbols: Dict[str, int]) -> int:
        name = line.mnemonic
        assert name is not None
        if name == ".word":
            for operand in line.operands:
                value = evaluate(operand, symbols) & 0xFFFFFFFF
                program.instructions.append(
                    AssembledInstruction(address, value, ".word",
                                         line.number, line.raw)
                )
                address += 4
            return address
        if name in (".org", ".align", ".zero"):
            target = self._directive_size(line, address, symbols, define=False)
            nop_word = self._encode("addi", ["x0", "x0", "0"], symbols, address)
            while address < target:
                program.instructions.append(
                    AssembledInstruction(address, nop_word, "nop",
                                         line.number, line.raw)
                )
                address += 4
            return address
        # .equ and ignored directives emit nothing.
        return self._directive_size(line, address, symbols, define=False)

    def _emit_instruction(self, program: Program, line: Line, address: int,
                          symbols: Dict[str, int]) -> int:
        mnemonic = line.mnemonic
        assert mnemonic is not None
        if is_pseudo(mnemonic):
            pieces = expand_pseudo(mnemonic, line.operands, symbols)
        else:
            pieces = [(mnemonic, line.operands)]
        for real_mnemonic, tokens in pieces:
            word = self._encode(real_mnemonic, tokens, symbols, address)
            program.instructions.append(
                AssembledInstruction(address, word, real_mnemonic,
                                     line.number, line.raw)
            )
            address += 4
        return address

    # -- helpers ------------------------------------------------------------------

    def _resolve_spec(self, line: Line):
        mnemonic = line.mnemonic
        assert mnemonic is not None
        mnemonic = CUSTOM_ALIASES.get(mnemonic, mnemonic)
        try:
            return self._isa.lookup(mnemonic)
        except KeyError as exc:
            raise AssemblyError(str(exc.args[0]), line.number, line.raw) from exc

    def _encode(self, mnemonic: str, tokens: List[str],
                symbols: Dict[str, int], address: int) -> int:
        mnemonic = CUSTOM_ALIASES.get(mnemonic, mnemonic)
        spec = self._isa.lookup(mnemonic)
        operands = build_operands(spec, tokens, symbols, address)
        return encode_instruction(spec, operands)


def assemble(source: str, base_address: int = 0,
             isa: Optional[InstructionSet] = None) -> Program:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler(isa or ISA).assemble(source, base_address)
