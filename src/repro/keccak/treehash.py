"""Tree-parallel hashing: ParallelHash, TupleHash and the leaf planner.

Tree-hashing modes are the purest source of the independent-permutation
parallelism the paper's multi-state lanes (SN in {1, 3, 6}) exist for:
every leaf chunk is hashed by its own sponge with no data dependency on
its siblings.  This module implements the two SP 800-185 derived
functions still missing from the family — ParallelHash128/256 and
TupleHash128/256 — and the shared *leaf planner* that KangarooTwelve
(:mod:`repro.keccak.kangarootwelve`) also uses to hash its 8 KiB chunks.

The planner maps leaves onto two nested levels of parallelism:

* **batched** — leaves are packed into lane-width groups and dispatched
  to the batch drivers (:mod:`repro.programs.batch_driver`), where the
  SoA mega-batch kernels permute 64 sponge states per generated kernel
  call (or SN states on the per-call engines);
* **pooled** — large leaf sets additionally fan out across the worker
  pool via the zero-copy shared-memory transport (``run_many`` /
  ``plan_spans``), with chaining values reassembled in input order.

When the engine registry declines (tiny inputs, an explicit
``reference`` request, or no batching engine registered) the planner
falls back to the sequential pure-Python sponge — the differential
ground truth every other path must match bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

from .cshake import (
    cshake128,
    cshake256,
    cshake_sponge,
    encode_string,
    left_encode,
    right_encode,
)
from .permutation import keccak_f1600, keccak_p1600
from .sponge import SHAKE_SUFFIX, Sponge

#: Default leaf size of ParallelHash in this repository (the K12 chunk).
DEFAULT_BLOCK_BYTES = 8192

#: Below this many leaves the batch engines cannot beat a plain sponge.
MIN_BATCH_LEAVES = 2

#: The architecture key every leaf batch runs on (the paper's V64H8).
_LEAF_ARCH = (64, 8, 30)


@dataclass(frozen=True)
class LeafSpec:
    """Shape of one tree's leaf sponge.

    ``algorithm`` is the :mod:`repro.programs.batch_driver` algorithm
    name used for the batched/pooled paths; the remaining fields define
    the sequential reference sponge (and must agree with the batch
    driver's registry entry for that algorithm).
    """

    algorithm: str
    capacity_bits: int
    suffix: int
    num_rounds: int
    cv_bytes: int

    def reference_cv(self, leaf: bytes) -> bytes:
        """One chaining value on the sequential pure-Python sponge."""
        if self.num_rounds == 24:
            permutation = keccak_f1600
        else:
            permutation = partial(keccak_p1600, num_rounds=self.num_rounds)
        sponge = Sponge(self.capacity_bits, self.suffix, permutation)
        return sponge.absorb(leaf).squeeze(self.cv_bytes)


#: KangarooTwelve leaves: TurboSHAKE128 (12 rounds) with the leaf
#: domain byte 0x0B, 32-byte chaining values.
K12_LEAF = LeafSpec("k12_leaf", 256, 0x0B, 12, 32)

#: ParallelHash128 leaves: cSHAKE128 with empty N and S *is* SHAKE128
#: (SP 800-185 §6.3), so the leaf batches reuse the shake128 driver.
PH128_LEAF = LeafSpec("shake128", 256, SHAKE_SUFFIX, 24, 32)

#: ParallelHash256 leaves: SHAKE256, 64-byte chaining values.
PH256_LEAF = LeafSpec("shake256", 512, SHAKE_SUFFIX, 24, 64)


@dataclass(frozen=True)
class TreePlan:
    """One leaf set's execution plan.

    ``mode`` is ``"sequential"`` (pure-Python sponge per leaf),
    ``"batched"`` (lane-width groups on the batch drivers, in process)
    or ``"pooled"`` (lane groups fanned out across the worker pool).
    ``lane_width`` is the lock-step group size of the chosen engine
    (the SoA batch width, SN for per-call engines, 1 for whole-message
    engines); ``reason`` says why this mode won.
    """

    mode: str
    engine: str
    workers: int
    lane_width: int
    reason: str


def _resolve_engine(engine: Optional[str]) -> str:
    """Map ``None``/``"auto"`` to the preferred batching engine."""
    from ..sim import engines as _engines

    if engine in (None, "auto"):
        return "soa" if "soa" in _engines.names() else "reference"
    return _engines.validate(engine)


def _engine_lane_width(engine: str, num_rounds: int) -> int:
    """Lock-step group size of ``engine`` for a ``num_rounds`` program."""
    from ..programs import batch_driver as _bd
    from ..sim import engines as _engines

    spec = _engines.maybe_get(engine)
    if spec is not None and spec.digest_batch is not None:
        return 1  # whole-message engines have no lock-step groups
    perm = _bd._cached_permutation(_LEAF_ARCH, engine,
                                   num_rounds=num_rounds)
    return perm.max_states


def plan_tree(num_leaves: int, *, engine: Optional[str] = None,
              workers: Optional[int] = None,
              num_rounds: int = 24) -> TreePlan:
    """Pick the execution mode for ``num_leaves`` independent leaves.

    Fallback rules, in order:

    * fewer than :data:`MIN_BATCH_LEAVES` leaves -> sequential (batch
      dispatch overhead cannot amortize);
    * an explicit ``engine="reference"`` with no pool -> sequential
      (the differential ground-truth path);
    * ``workers > 1`` *and* at least two full lane-width groups ->
      pooled (the fork/IPC cost needs whole groups to steal);
    * otherwise -> batched in this process.
    """
    workers = int(workers) if workers else 1
    if workers < 1:
        raise ValueError(f"workers must be positive: {workers}")
    resolved = _resolve_engine(engine)
    if num_leaves < MIN_BATCH_LEAVES:
        return TreePlan("sequential", resolved, 1, 1,
                        f"{num_leaves} leaf/leaves below the "
                        f"{MIN_BATCH_LEAVES}-leaf batching floor")
    if resolved == "reference" and workers == 1:
        return TreePlan("sequential", resolved, 1, 1,
                        "reference engine requested without a pool")
    lane_width = _engine_lane_width(resolved, num_rounds)
    if workers > 1 and num_leaves >= 2 * lane_width:
        return TreePlan("pooled", resolved, workers, lane_width,
                        f"{num_leaves} leaves >= 2 lane groups of "
                        f"{lane_width} across {workers} workers")
    return TreePlan("batched", resolved, 1, lane_width,
                    f"{num_leaves} leaves in lane groups of {lane_width} "
                    "in process")


def hash_leaves(leaves: Sequence[bytes], spec: LeafSpec = K12_LEAF, *,
                engine: Optional[str] = None,
                workers: Optional[int] = None,
                transport: str = "auto",
                checkpoint: Optional[str] = None) -> List[bytes]:
    """Chaining values of ``leaves``, in input order, per the planner.

    All three plan modes are bit-identical by construction (and pinned
    so by the test matrix); ``checkpoint`` names a resume manifest for
    the pooled path (ignored otherwise).
    """
    payloads = [bytes(leaf) for leaf in leaves]
    plan = plan_tree(len(payloads), engine=engine, workers=workers,
                     num_rounds=spec.num_rounds)
    if plan.mode == "sequential":
        return [spec.reference_cv(leaf) for leaf in payloads]
    from ..programs import batch_driver as _bd

    if plan.mode == "pooled":
        return _bd.run_many(payloads, algorithm=spec.algorithm,
                            length=spec.cv_bytes, workers=plan.workers,
                            engine=plan.engine, transport=transport,
                            checkpoint=checkpoint)
    return _bd.hash_messages(spec.algorithm, spec.cv_bytes, _LEAF_ARCH,
                             plan.engine, payloads)


# -- ParallelHash (SP 800-185 §6) ---------------------------------------------


def _parallelhash(data: bytes, length: int, block_size: int,
                  customization: bytes, *, strength_bits: int, xof: bool,
                  engine: Optional[str], workers: Optional[int],
                  transport: str) -> bytes:
    if block_size < 1:
        raise ValueError(f"block size must be positive: {block_size}")
    if length < 0:
        raise ValueError(f"cannot squeeze {length} bytes")
    spec = PH128_LEAF if strength_bits == 128 else PH256_LEAF
    data = bytes(data)
    blocks = [data[offset:offset + block_size]
              for offset in range(0, len(data), block_size)]
    cvs = hash_leaves(blocks, spec, engine=engine, workers=workers,
                      transport=transport)
    node = left_encode(block_size) + b"".join(cvs)
    node += right_encode(len(blocks))
    node += right_encode(0 if xof else 8 * length)
    final = cshake128 if strength_bits == 128 else cshake256
    return final(node, length, b"ParallelHash", customization)


def parallelhash128(data: bytes, length: int,
                    block_size: int = DEFAULT_BLOCK_BYTES,
                    customization: bytes = b"", *,
                    engine: Optional[str] = None,
                    workers: Optional[int] = None,
                    transport: str = "auto") -> bytes:
    """ParallelHash128(X, B, L, S): block-parallel 128-bit-strength hash.

    ``X`` is cut into ``B``-byte blocks, each block's SHAKE128 chaining
    value is computed through the leaf planner (SoA lanes / worker
    pool), and the chaining values feed a final cSHAKE128 node.
    """
    return _parallelhash(data, length, block_size, customization,
                         strength_bits=128, xof=False, engine=engine,
                         workers=workers, transport=transport)


def parallelhash256(data: bytes, length: int,
                    block_size: int = DEFAULT_BLOCK_BYTES,
                    customization: bytes = b"", *,
                    engine: Optional[str] = None,
                    workers: Optional[int] = None,
                    transport: str = "auto") -> bytes:
    """ParallelHash256(X, B, L, S): block-parallel 256-bit-strength hash."""
    return _parallelhash(data, length, block_size, customization,
                         strength_bits=256, xof=False, engine=engine,
                         workers=workers, transport=transport)


def parallelhash128_xof(data: bytes, length: int,
                        block_size: int = DEFAULT_BLOCK_BYTES,
                        customization: bytes = b"", *,
                        engine: Optional[str] = None,
                        workers: Optional[int] = None,
                        transport: str = "auto") -> bytes:
    """ParallelHashXOF128 — arbitrary-length variant (L encoded as 0)."""
    return _parallelhash(data, length, block_size, customization,
                         strength_bits=128, xof=True, engine=engine,
                         workers=workers, transport=transport)


def parallelhash256_xof(data: bytes, length: int,
                        block_size: int = DEFAULT_BLOCK_BYTES,
                        customization: bytes = b"", *,
                        engine: Optional[str] = None,
                        workers: Optional[int] = None,
                        transport: str = "auto") -> bytes:
    """ParallelHashXOF256 — arbitrary-length variant (L encoded as 0)."""
    return _parallelhash(data, length, block_size, customization,
                         strength_bits=256, xof=True, engine=engine,
                         workers=workers, transport=transport)


class _ParallelHashBase:
    """hashlib-style ParallelHash object with a streaming XOF squeeze.

    ``digest(length)`` is the fixed-length ParallelHash (L encoded in
    the final node, restartable); ``read(length)`` streams the
    ParallelHashXOF variant (L encoded as 0) — successive calls continue
    the output stream without re-absorbing, and the two outputs differ
    by construction (SP 800-185 encodes L into the node).
    """

    strength_bits: int = 0
    name: str = "parallelhash"

    def __init__(self, data: bytes = b"",
                 block_size: int = DEFAULT_BLOCK_BYTES,
                 customization: bytes = b"", *,
                 engine: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        if self.strength_bits == 0:
            raise TypeError("instantiate a concrete ParallelHash subclass")
        if block_size < 1:
            raise ValueError(f"block size must be positive: {block_size}")
        self.block_size = block_size
        self._customization = bytes(customization)
        self._engine = engine
        self._workers = workers
        self._buffer = bytearray(data)
        self._reader: Optional[Sponge] = None
        self._cv_cache: Optional[tuple] = None

    @property
    def squeezing(self) -> bool:
        """True once ``read`` has started streaming XOF output."""
        return self._reader is not None

    def update(self, data: bytes) -> None:
        """Absorb more message bytes (before any ``read``)."""
        if self._reader is not None:
            raise RuntimeError("cannot absorb after read() started")
        self._buffer.extend(data)
        self._cv_cache = None

    def _node(self, output_bits: int) -> bytes:
        if self._cv_cache is None or self._cv_cache[0] != len(self._buffer):
            data = bytes(self._buffer)
            spec = PH128_LEAF if self.strength_bits == 128 else PH256_LEAF
            blocks = [data[offset:offset + self.block_size]
                      for offset in range(0, len(data), self.block_size)]
            cvs = hash_leaves(blocks, spec, engine=self._engine,
                              workers=self._workers)
            self._cv_cache = (len(self._buffer), len(blocks), b"".join(cvs))
        _, num_blocks, joined = self._cv_cache
        return (left_encode(self.block_size) + joined
                + right_encode(num_blocks) + right_encode(output_bits))

    def digest(self, length: int) -> bytes:
        """Fixed-length ParallelHash output (restartable)."""
        final = cshake128 if self.strength_bits == 128 else cshake256
        return final(self._node(8 * length), length, b"ParallelHash",
                     self._customization)

    def hexdigest(self, length: int) -> str:
        """``length`` output bytes as hex."""
        return self.digest(length).hex()

    def read(self, length: int) -> bytes:
        """Streaming ParallelHashXOF squeeze (continues the stream)."""
        if self._reader is None:
            sponge = cshake_sponge(b"ParallelHash", self._customization,
                                   2 * self.strength_bits)
            sponge.absorb(self._node(0))
            self._reader = sponge
        return self._reader.squeeze(length)

    def copy(self) -> "_ParallelHashBase":
        clone = type(self)(block_size=self.block_size,
                           customization=self._customization,
                           engine=self._engine, workers=self._workers)
        clone._buffer = bytearray(self._buffer)
        clone._cv_cache = self._cv_cache
        clone._reader = None if self._reader is None else self._reader.copy()
        return clone


class ParallelHash128(_ParallelHashBase):
    """ParallelHash128 object: 128-bit strength, SHAKE128 leaves."""

    strength_bits = 128
    name = "parallelhash128"


class ParallelHash256(_ParallelHashBase):
    """ParallelHash256 object: 256-bit strength, SHAKE256 leaves."""

    strength_bits = 256
    name = "parallelhash256"


# -- TupleHash (SP 800-185 §5) ------------------------------------------------


def _tuplehash(items: Sequence[bytes], length: int, customization: bytes,
               *, strength_bits: int, xof: bool) -> bytes:
    if length < 0:
        raise ValueError(f"cannot squeeze {length} bytes")
    node = b"".join(encode_string(bytes(item)) for item in items)
    node += right_encode(0 if xof else 8 * length)
    final = cshake128 if strength_bits == 128 else cshake256
    return final(node, length, b"TupleHash", customization)


def tuplehash128(items: Sequence[bytes], length: int,
                 customization: bytes = b"") -> bytes:
    """TupleHash128(X, L, S): unambiguous hash of a tuple of strings."""
    return _tuplehash(items, length, customization,
                      strength_bits=128, xof=False)


def tuplehash256(items: Sequence[bytes], length: int,
                 customization: bytes = b"") -> bytes:
    """TupleHash256(X, L, S): 256-bit-strength tuple hash."""
    return _tuplehash(items, length, customization,
                      strength_bits=256, xof=False)


def tuplehash128_xof(items: Sequence[bytes], length: int,
                     customization: bytes = b"") -> bytes:
    """TupleHashXOF128 — arbitrary-length variant (L encoded as 0)."""
    return _tuplehash(items, length, customization,
                      strength_bits=128, xof=True)


def tuplehash256_xof(items: Sequence[bytes], length: int,
                     customization: bytes = b"") -> bytes:
    """TupleHashXOF256 — arbitrary-length variant (L encoded as 0)."""
    return _tuplehash(items, length, customization,
                      strength_bits=256, xof=True)
