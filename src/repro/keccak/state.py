"""The Keccak state array and its partition views (paper Fig. 2).

The 1600-bit state is a 5 x 5 matrix of 64-bit lanes.  The paper discusses
three partitions — planes (rows), sheets (columns) and slices (z-sections) —
and selects the *plane-wise* partition for vectorization, because the five
lanes of a row can be processed by a single vector instruction.  This module
provides all three views plus the byte<->state conversions of FIPS 202.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from .constants import MASK64, STATE_BYTES


class KeccakState:
    """A 5 x 5 x 64-bit Keccak state.

    Lanes are stored row-major as a flat list ``_lanes[5 * y + x]``, the same
    lane ordering FIPS 202 uses for byte serialization and the same ordering
    the paper's vector register file uses within one plane (Fig. 5).
    """

    __slots__ = ("_lanes",)

    def __init__(self, lanes: Sequence[int] | None = None) -> None:
        if lanes is None:
            self._lanes: List[int] = [0] * 25
        else:
            lanes = list(lanes)
            if len(lanes) != 25:
                raise ValueError(
                    f"a Keccak state has 25 lanes, got {len(lanes)}"
                )
            for i, lane in enumerate(lanes):
                if not 0 <= lane <= MASK64:
                    raise ValueError(
                        f"lane {i} out of 64-bit range: {lane:#x}"
                    )
            self._lanes = lanes

    # -- element access ----------------------------------------------------

    def __getitem__(self, xy: Tuple[int, int]) -> int:
        x, y = xy
        self._check_coords(x, y)
        return self._lanes[5 * y + x]

    def __setitem__(self, xy: Tuple[int, int], value: int) -> None:
        x, y = xy
        self._check_coords(x, y)
        if not 0 <= value <= MASK64:
            raise ValueError(f"lane value out of 64-bit range: {value:#x}")
        self._lanes[5 * y + x] = value

    @staticmethod
    def _check_coords(x: int, y: int) -> None:
        if not (0 <= x < 5 and 0 <= y < 5):
            raise IndexError(f"lane coordinates out of range: ({x}, {y})")

    def get_bit(self, x: int, y: int, z: int) -> int:
        """Return the bit at coordinates (x, y, z) of the state array."""
        if not 0 <= z < 64:
            raise IndexError(f"z coordinate out of range: {z}")
        return (self[x, y] >> z) & 1

    # -- partition views (paper Fig. 2) ------------------------------------

    @property
    def lanes(self) -> Tuple[int, ...]:
        """All 25 lanes in row-major order (lane(x, y) at index 5y + x)."""
        return tuple(self._lanes)

    def plane(self, y: int) -> Tuple[int, ...]:
        """Plane y: the 5 lanes sharing row index y (the vectorized unit)."""
        if not 0 <= y < 5:
            raise IndexError(f"plane index out of range: {y}")
        return tuple(self._lanes[5 * y : 5 * y + 5])

    def set_plane(self, y: int, lanes: Iterable[int]) -> None:
        """Replace plane y with the given 5 lanes."""
        lanes = list(lanes)
        if len(lanes) != 5:
            raise ValueError(f"a plane has 5 lanes, got {len(lanes)}")
        for x, lane in enumerate(lanes):
            self[x, y] = lane

    def sheet(self, x: int) -> Tuple[int, ...]:
        """Sheet x: the 5 lanes sharing column index x."""
        if not 0 <= x < 5:
            raise IndexError(f"sheet index out of range: {x}")
        return tuple(self._lanes[5 * y + x] for y in range(5))

    def slice(self, z: int) -> Tuple[Tuple[int, ...], ...]:
        """Slice z: the 25 bits at depth z, as a 5x5 matrix indexed [y][x]."""
        if not 0 <= z < 64:
            raise IndexError(f"slice index out of range: {z}")
        return tuple(
            tuple((self[x, y] >> z) & 1 for x in range(5)) for y in range(5)
        )

    # -- serialization (FIPS 202 / paper Fig. 5 memory order) ---------------

    def to_bytes(self) -> bytes:
        """Serialize to 200 bytes: lane(x, y) at offset 8*(5y + x), LE."""
        return b"".join(lane.to_bytes(8, "little") for lane in self._lanes)

    @classmethod
    def from_bytes(cls, data: bytes) -> "KeccakState":
        """Deserialize a 200-byte string into a state."""
        if len(data) != STATE_BYTES:
            raise ValueError(
                f"a serialized state is {STATE_BYTES} bytes, got {len(data)}"
            )
        return cls(
            [
                int.from_bytes(data[8 * i : 8 * i + 8], "little")
                for i in range(25)
            ]
        )

    def xor_bytes(self, data: bytes) -> None:
        """XOR ``data`` (at most 200 bytes) into the front of the state.

        This is the absorbing operation of the sponge construction: message
        blocks are XORed into the first ``rate`` bits of the state.
        """
        if len(data) > STATE_BYTES:
            raise ValueError(
                f"cannot absorb {len(data)} bytes into a 200-byte state"
            )
        for i, byte in enumerate(data):
            lane_index, shift = divmod(i, 8)
            self._lanes[lane_index] ^= byte << (8 * shift)

    # -- misc ----------------------------------------------------------------

    def copy(self) -> "KeccakState":
        """Return an independent copy of this state."""
        return KeccakState(self._lanes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeccakState):
            return NotImplemented
        return self._lanes == other._lanes

    def __hash__(self) -> int:
        return hash(tuple(self._lanes))

    def __iter__(self) -> Iterator[int]:
        return iter(self._lanes)

    def __repr__(self) -> str:
        rows = []
        for y in range(5):
            row = " ".join(f"{lane:016x}" for lane in self.plane(y))
            rows.append(f"  y={y}: {row}")
        return "KeccakState(\n" + "\n".join(rows) + "\n)"
