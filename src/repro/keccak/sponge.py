"""The sponge construction (paper Fig. 1).

Padding, absorbing and squeezing over the Keccak-f[1600] permutation with
arbitrary rate/capacity split and arbitrary input/output lengths.  The SHA-3
hash functions and the SHAKE extendable-output functions in
:mod:`repro.keccak.hashes` are thin wrappers around this class.
"""

from __future__ import annotations

from typing import Callable

from .constants import STATE_BYTES
from .permutation import keccak_f1600
from .state import KeccakState

#: Domain-separation suffix for the SHA-3 hash functions (FIPS 202: ``01``).
SHA3_SUFFIX = 0x06

#: Domain-separation suffix for the SHAKE XOFs (FIPS 202: ``1111``).
SHAKE_SUFFIX = 0x1F

#: Suffix for the original (pre-standardization) Keccak submission.
KECCAK_SUFFIX = 0x01

PermutationFn = Callable[[KeccakState], KeccakState]


def pad10star1(message_length: int, rate_bytes: int) -> bytes:
    """Return the pad10*1 padding bytes for a message of the given length.

    The returned bytes already include the domain suffix's *first* padding
    bit convention used by :class:`Sponge` (the suffix byte is merged by the
    caller); this helper pads a raw Keccak message (suffix ``0x01``).
    """
    if rate_bytes <= 0:
        raise ValueError(f"rate must be positive, got {rate_bytes}")
    remainder = message_length % rate_bytes
    pad_length = rate_bytes - remainder
    if pad_length == 1:
        return b"\x81"
    return b"\x01" + b"\x00" * (pad_length - 2) + b"\x80"


class Sponge:
    """A duplex-free sponge over Keccak-f[1600].

    Parameters
    ----------
    capacity_bits:
        The capacity c in bits.  The rate is ``1600 - c``.  Must be a
        positive multiple of 8 and smaller than 1600.
    suffix:
        Domain-separation suffix byte.  Encodes the suffix bits followed by
        the first padding ``1`` bit, LSB first (``0x06`` for SHA-3, ``0x1F``
        for SHAKE, ``0x01`` for raw Keccak).
    permutation:
        The permutation to iterate; injectable for testing (defaults to
        Keccak-f[1600]).
    """

    def __init__(
        self,
        capacity_bits: int,
        suffix: int = SHA3_SUFFIX,
        permutation: PermutationFn = keccak_f1600,
    ) -> None:
        if capacity_bits % 8 != 0:
            raise ValueError("capacity must be a multiple of 8 bits")
        if not 0 < capacity_bits < 1600:
            raise ValueError(
                f"capacity must be in (0, 1600), got {capacity_bits}"
            )
        if not 0 < suffix <= 0xFF:
            raise ValueError(f"suffix must be a non-zero byte, got {suffix}")
        self.capacity_bits = capacity_bits
        self.rate_bits = 1600 - capacity_bits
        self.rate_bytes = self.rate_bits // 8
        self.suffix = suffix
        self._permutation = permutation
        self._state = KeccakState()
        self._buffer = bytearray()
        self._squeezing = False
        self._squeeze_offset = 0

    # -- absorbing -----------------------------------------------------------

    def absorb(self, data: bytes) -> "Sponge":
        """Absorb message bytes.  May be called repeatedly (streaming)."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing has started")
        self._buffer.extend(data)
        while len(self._buffer) >= self.rate_bytes:
            block = bytes(self._buffer[: self.rate_bytes])
            del self._buffer[: self.rate_bytes]
            self._state.xor_bytes(block)
            self._state = self._permutation(self._state)
        return self

    def _finalize(self) -> None:
        """Apply suffix + pad10*1 and transition to the squeezing phase."""
        block = bytearray(self._buffer)
        self._buffer.clear()
        block.append(self.suffix)
        while len(block) < self.rate_bytes:
            block.append(0)
        block[self.rate_bytes - 1] ^= 0x80
        self._state.xor_bytes(bytes(block))
        self._state = self._permutation(self._state)
        self._squeezing = True
        self._squeeze_offset = 0

    # -- squeezing -----------------------------------------------------------

    def squeeze(self, num_bytes: int) -> bytes:
        """Squeeze the next ``num_bytes`` of output (streaming)."""
        if num_bytes < 0:
            raise ValueError(f"cannot squeeze {num_bytes} bytes")
        if not self._squeezing:
            self._finalize()
        out = bytearray()
        while len(out) < num_bytes:
            if self._squeeze_offset == self.rate_bytes:
                self._state = self._permutation(self._state)
                self._squeeze_offset = 0
            available = self.rate_bytes - self._squeeze_offset
            take = min(available, num_bytes - len(out))
            state_bytes = self._state.to_bytes()
            out.extend(
                state_bytes[self._squeeze_offset : self._squeeze_offset + take]
            )
            self._squeeze_offset += take
        return bytes(out)

    # -- introspection ---------------------------------------------------------

    @property
    def state(self) -> KeccakState:
        """A copy of the current internal state (for tests/inspection)."""
        return self._state.copy()

    @property
    def squeezing(self) -> bool:
        """True once the sponge has entered the squeezing phase."""
        return self._squeezing

    def copy(self) -> "Sponge":
        """Deep copy, preserving phase and buffered bytes."""
        clone = Sponge(self.capacity_bits, self.suffix, self._permutation)
        clone._state = self._state.copy()
        clone._buffer = bytearray(self._buffer)
        clone._squeezing = self._squeezing
        clone._squeeze_offset = self._squeeze_offset
        return clone


def sponge_hash(
    data: bytes, capacity_bits: int, output_bytes: int, suffix: int
) -> bytes:
    """One-shot sponge evaluation (absorb everything, squeeze once)."""
    if output_bytes > STATE_BYTES * 1024:
        raise ValueError("unreasonably large output requested")
    return Sponge(capacity_bits, suffix).absorb(data).squeeze(output_bytes)
