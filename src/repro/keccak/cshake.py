"""SHA-3 derived functions: cSHAKE and KMAC (NIST SP 800-185).

These are the standardized customizable-XOF and MAC constructions built
on the same Keccak sponge the paper accelerates — any speedup of
Keccak-f[1600] transfers to them directly.  Included because realistic
SHA-3 deployments (and several PQC schemes) use the derived functions,
not just the base six.

Implements ``left_encode``/``right_encode``/``encode_string``/``bytepad``
exactly per SP 800-185 and validates against the NIST sample vectors.
"""

from __future__ import annotations

from .sponge import SHAKE_SUFFIX, Sponge

#: Domain-separation suffix of cSHAKE (the two bits ``00`` + first pad bit).
CSHAKE_SUFFIX = 0x04


def left_encode(value: int) -> bytes:
    """SP 800-185 left_encode: length-prefixed big-endian integer."""
    if value < 0:
        raise ValueError(f"cannot encode negative value: {value}")
    digits = bytearray()
    while True:
        digits.insert(0, value & 0xFF)
        value >>= 8
        if value == 0:
            break
    return bytes([len(digits)]) + bytes(digits)


def right_encode(value: int) -> bytes:
    """SP 800-185 right_encode: big-endian integer with trailing length."""
    if value < 0:
        raise ValueError(f"cannot encode negative value: {value}")
    digits = bytearray()
    while True:
        digits.insert(0, value & 0xFF)
        value >>= 8
        if value == 0:
            break
    return bytes(digits) + bytes([len(digits)])


def encode_string(data: bytes) -> bytes:
    """SP 800-185 encode_string: bit-length prefix + the string."""
    return left_encode(8 * len(data)) + data


def bytepad(data: bytes, width: int) -> bytes:
    """SP 800-185 bytepad: prefix with the width, zero-pad to a multiple."""
    if width <= 0:
        raise ValueError(f"bytepad width must be positive: {width}")
    out = bytearray(left_encode(width))
    out.extend(data)
    while len(out) % width:
        out.append(0)
    return bytes(out)


def cshake_sponge(function_name: bytes = b"", customization: bytes = b"",
                  capacity_bits: int = 256) -> Sponge:
    """A streaming sponge primed as cSHAKE(N, S) at the given capacity.

    Absorb message bytes into the returned sponge and squeeze any output
    length (repeatedly — the sponge streams).  Per SP 800-185, empty N
    *and* S degrade to plain SHAKE, so the returned sponge carries the
    SHAKE suffix in that case and the cSHAKE suffix otherwise.  This is
    the shared final-node primitive of TupleHash and ParallelHash.
    """
    if not function_name and not customization:
        return Sponge(capacity_bits, SHAKE_SUFFIX)
    rate_bytes = (1600 - capacity_bits) // 8
    sponge = Sponge(capacity_bits, CSHAKE_SUFFIX)
    sponge.absorb(bytepad(
        encode_string(function_name) + encode_string(customization),
        rate_bytes,
    ))
    return sponge


def _cshake(data: bytes, length: int, function_name: bytes,
            customization: bytes, capacity_bits: int,
            rate_bytes: int) -> bytes:
    sponge = cshake_sponge(function_name, customization, capacity_bits)
    return sponge.absorb(data).squeeze(length)


def cshake128(data: bytes, length: int, function_name: bytes = b"",
              customization: bytes = b"") -> bytes:
    """cSHAKE128(X, L, N, S) — customizable 128-bit-strength XOF."""
    return _cshake(data, length, function_name, customization, 256, 168)


def cshake256(data: bytes, length: int, function_name: bytes = b"",
              customization: bytes = b"") -> bytes:
    """cSHAKE256(X, L, N, S) — customizable 256-bit-strength XOF."""
    return _cshake(data, length, function_name, customization, 512, 136)


def _kmac(key: bytes, data: bytes, length: int, customization: bytes,
          capacity_bits: int, rate_bytes: int, xof: bool) -> bytes:
    payload = bytepad(encode_string(key), rate_bytes) + data
    payload += right_encode(0 if xof else 8 * length)
    return _cshake(payload, length, b"KMAC", customization,
                   capacity_bits, rate_bytes)


def kmac128(key: bytes, data: bytes, length: int,
            customization: bytes = b"") -> bytes:
    """KMAC128 — keyed MAC with fixed output length."""
    return _kmac(key, data, length, customization, 256, 168, xof=False)


def kmac256(key: bytes, data: bytes, length: int,
            customization: bytes = b"") -> bytes:
    """KMAC256 — keyed MAC with fixed output length."""
    return _kmac(key, data, length, customization, 512, 136, xof=False)


def kmac128_xof(key: bytes, data: bytes, length: int,
                customization: bytes = b"") -> bytes:
    """KMACXOF128 — arbitrary-length variant (L encoded as 0)."""
    return _kmac(key, data, length, customization, 256, 168, xof=True)


def kmac256_xof(key: bytes, data: bytes, length: int,
                customization: bytes = b"") -> bytes:
    """KMACXOF256 — arbitrary-length variant (L encoded as 0)."""
    return _kmac(key, data, length, customization, 512, 136, xof=True)
