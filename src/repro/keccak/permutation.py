"""The Keccak-f[1600] permutation, plane-per-plane (paper Algorithm 1).

Each of the five step mappings (theta, rho, pi, chi, iota) is exposed as a
standalone pure function so tests can check it against the corresponding
custom vector instruction in the simulator.  The loop structure deliberately
mirrors Algorithm 1 of the paper, which processes the state plane by plane —
the form the vector programs implement.
"""

from __future__ import annotations

from typing import List

from .constants import NUM_ROUNDS, RHO_OFFSETS, ROUND_CONSTANTS, rotl64
from .state import KeccakState


def theta(state: KeccakState) -> KeccakState:
    """Theta step: linear diffusion via column parities.

    ``B[x]`` is the parity of sheet x; ``C[x] = B[x-1] ^ ROT(B[x+1], 1)``;
    every lane of sheet x is XORed with ``C[x]``.
    """
    b = [0] * 5
    for x in range(5):
        parity = 0
        for y in range(5):
            parity ^= state[x, y]
        b[x] = parity
    c = [b[(x - 1) % 5] ^ rotl64(b[(x + 1) % 5], 1) for x in range(5)]
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            out[x, y] = state[x, y] ^ c[x]
    return out


def rho(state: KeccakState) -> KeccakState:
    """Rho step: rotate each lane by its position-dependent offset."""
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            out[x, y] = rotl64(state[x, y], RHO_OFFSETS[x][y])
    return out


def pi(state: KeccakState) -> KeccakState:
    """Pi step: scramble lane positions, ``F[x, y] = E[(x + 3y) mod 5, x]``."""
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            out[x, y] = state[(x + 3 * y) % 5, x]
    return out


def chi(state: KeccakState) -> KeccakState:
    """Chi step: the only non-linear mapping, row-wise AND-NOT-XOR."""
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            g = (~state[(x + 1) % 5, y]) & state[(x + 2) % 5, y]
            out[x, y] = state[x, y] ^ (g & ((1 << 64) - 1))
    return out


def iota(state: KeccakState, round_index: int) -> KeccakState:
    """Iota step: XOR the round constant into lane (0, 0)."""
    if not 0 <= round_index < NUM_ROUNDS:
        raise ValueError(f"round index out of range: {round_index}")
    out = state.copy()
    out[0, 0] = state[0, 0] ^ ROUND_CONSTANTS[round_index]
    return out


def keccak_round(state: KeccakState, round_index: int) -> KeccakState:
    """One full round: iota(chi(pi(rho(theta(state)))), i)."""
    return iota(chi(pi(rho(theta(state)))), round_index)


def keccak_f1600(state: KeccakState) -> KeccakState:
    """The full 24-round Keccak-f[1600] permutation."""
    for round_index in range(NUM_ROUNDS):
        state = keccak_round(state, round_index)
    return state


def keccak_f1600_lanes(lanes: List[int]) -> List[int]:
    """Permute a flat 25-lane list in place-free style; convenience wrapper."""
    return list(keccak_f1600(KeccakState(lanes)).lanes)


def keccak_p1600(state: KeccakState, num_rounds: int) -> KeccakState:
    """The generalized Keccak-p[1600, n_r] permutation (FIPS 202 §3.3).

    Runs the *last* ``num_rounds`` rounds of Keccak-f[1600] (round indices
    ``24 - num_rounds`` .. 23), so ``keccak_p1600(s, 24)`` equals
    ``keccak_f1600(s)``.  The 12-round instance underlies TurboSHAKE and
    KangarooTwelve.
    """
    if not 0 < num_rounds <= NUM_ROUNDS:
        raise ValueError(
            f"round count must be in 1..{NUM_ROUNDS}, got {num_rounds}"
        )
    for round_index in range(NUM_ROUNDS - num_rounds, NUM_ROUNDS):
        state = keccak_round(state, round_index)
    return state


# -- inverse step mappings -------------------------------------------------
#
# Every step mapping of Keccak-f is a bijection on the state.  The inverses
# are used by property tests (round-trip invariants) and are useful in their
# own right for cryptanalysis-style tooling.


def theta_inverse(state: KeccakState) -> KeccakState:
    """Inverse of theta, computed via the parity trick.

    theta XORs ``C[x]`` (a function of the column parities only) into every
    lane of sheet x.  Applying theta to a state changes the column parities
    linearly; we solve for the pre-image parities over GF(2)[z]/(z^64 - 1)
    by brute iteration: theta is an involution-free linear map, but its
    inverse can be computed by repeated squaring of the parity update.  For
    clarity and testability we instead invert via the generic linear-map
    approach: reconstruct the input parities from the output.
    """
    # theta: out[x,y] = in[x,y] ^ C[x] where C depends only on in-parities.
    # Out-parity P'[x] = P[x] ^ C[x]  (5 lanes XOR the same C[x]... 5 is odd,
    # so C[x] contributes once).  C[x] = P[x-1] ^ rot(P[x+1], 1).
    # So P'[x] = P[x] ^ P[x-1] ^ rot(P[x+1], 1): a linear map M on the 320
    # parity bits.  M is invertible; invert it by iterating M to its order.
    out_parity = [0] * 5
    for x in range(5):
        parity = 0
        for y in range(5):
            parity ^= state[x, y]
        out_parity[x] = parity

    def step(p: List[int]) -> List[int]:
        return [
            p[x] ^ p[(x - 1) % 5] ^ rotl64(p[(x + 1) % 5], 1)
            for x in range(5)
        ]

    # The parity map M has finite multiplicative order; find M^(order-1)
    # applied to out_parity by cycling until we return to the start.  The
    # order is bounded (it divides the order of the matrix group element);
    # in practice it is < 2^32, but cycling directly would be too slow, so
    # we use the doubling trick: M^(2^k) applied via repeated composition
    # of the whole sequence is equivalent to re-applying step to vectors.
    # Simpler and fast enough: invert by linear algebra over the 320 bits.
    in_parity = _invert_parity_map(out_parity)
    c = [
        in_parity[(x - 1) % 5] ^ rotl64(in_parity[(x + 1) % 5], 1)
        for x in range(5)
    ]
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            out[x, y] = state[x, y] ^ c[x]
    return out


def _invert_parity_map(out_parity: List[int]) -> List[int]:
    """Solve ``P' = P ^ P[x-1] ^ rot(P[x+1],1)`` for P, bit-sliced per z.

    The map mixes z-positions only through the rotation by 1, so we treat
    the 320 parity bits as a vector over GF(2) and invert by Gaussian
    elimination on the 320x320 matrix.  The matrix is fixed, so we build and
    cache its inverse as a list of 320 masks on first use.
    """
    inverse_rows = _parity_inverse_matrix()
    bits = 0
    for x in range(5):
        bits |= out_parity[x] << (64 * x)
    in_bits = 0
    for row_index, row_mask in enumerate(inverse_rows):
        if bin(bits & row_mask).count("1") & 1:
            in_bits |= 1 << row_index
    return [(in_bits >> (64 * x)) & ((1 << 64) - 1) for x in range(5)]


_PARITY_INVERSE_CACHE: List[int] = []


def _parity_inverse_matrix() -> List[int]:
    if _PARITY_INVERSE_CACHE:
        return _PARITY_INVERSE_CACHE

    size = 320

    def apply_forward(vec_bits: int) -> int:
        p = [(vec_bits >> (64 * x)) & ((1 << 64) - 1) for x in range(5)]
        q = [
            p[x] ^ p[(x - 1) % 5] ^ rotl64(p[(x + 1) % 5], 1)
            for x in range(5)
        ]
        out = 0
        for x in range(5):
            out |= q[x] << (64 * x)
        return out

    # Build the forward matrix columns, then invert with Gauss-Jordan.
    columns = [apply_forward(1 << i) for i in range(size)]
    # rows[r] = bitmask over columns contributing to output bit r.
    rows = [0] * size
    for col, colval in enumerate(columns):
        v = colval
        while v:
            low = v & -v
            r = low.bit_length() - 1
            rows[r] |= 1 << col
            v ^= low
    identity = [1 << r for r in range(size)]
    for col in range(size):
        pivot = None
        for r in range(col, size):
            if (rows[r] >> col) & 1:
                pivot = r
                break
        if pivot is None:
            raise ArithmeticError("theta parity map is singular")
        rows[col], rows[pivot] = rows[pivot], rows[col]
        identity[col], identity[pivot] = identity[pivot], identity[col]
        for r in range(size):
            if r != col and ((rows[r] >> col) & 1):
                rows[r] ^= rows[col]
                identity[r] ^= identity[col]
    _PARITY_INVERSE_CACHE.extend(identity)
    return _PARITY_INVERSE_CACHE


def rho_inverse(state: KeccakState) -> KeccakState:
    """Inverse of rho: rotate each lane right by its offset."""
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            out[x, y] = rotl64(state[x, y], (-RHO_OFFSETS[x][y]) % 64)
    return out


def pi_inverse(state: KeccakState) -> KeccakState:
    """Inverse of pi: undo the lane scramble."""
    out = KeccakState()
    for y in range(5):
        for x in range(5):
            out[(x + 3 * y) % 5, x] = state[x, y]
    return out


def chi_inverse(state: KeccakState) -> KeccakState:
    """Inverse of chi, computed row-wise.

    chi on a 5-lane row is invertible; the inverse has an explicit formula
    obtained by iterating the forward map (chi's row map has small order
    when composed with complementation).  We use the standard iterative
    construction: x_i = y_i ^ (~x_{i+1} & x_{i+2}) solved by fixpoint, which
    converges in ceil(5/2) + 1 = 3 iterations for width-5 rows.
    """
    mask = (1 << 64) - 1
    out = KeccakState()
    for y in range(5):
        row = [state[x, y] for x in range(5)]
        inv = list(row)
        for _ in range(3):
            inv = [
                row[x] ^ ((~inv[(x + 1) % 5] & mask) & inv[(x + 2) % 5])
                for x in range(5)
            ]
        for x in range(5):
            out[x, y] = inv[x]
    return out


def iota_inverse(state: KeccakState, round_index: int) -> KeccakState:
    """Inverse of iota (iota is an involution for a fixed round)."""
    return iota(state, round_index)


def keccak_f1600_inverse(state: KeccakState) -> KeccakState:
    """Inverse of the full permutation (useful for tests and analysis)."""
    for round_index in reversed(range(NUM_ROUNDS)):
        state = theta_inverse(
            rho_inverse(pi_inverse(chi_inverse(iota_inverse(state, round_index))))
        )
    return state
