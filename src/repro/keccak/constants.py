"""Constants of the Keccak-f[1600] permutation.

These are the tables the paper bakes into hardware: the round constants used
by the ``viota`` custom instruction (paper Table 6) and the per-lane rotation
offsets used by the ``v64rho``/``v32lrho``/``v32hrho`` instructions (paper
Table 2).  Both match FIPS 202.
"""

from __future__ import annotations

#: Number of rounds of Keccak-f[1600].
NUM_ROUNDS = 24

#: Width of one lane in bits.
LANE_BITS = 64

#: Mask selecting the low 64 bits of an integer.
MASK64 = (1 << 64) - 1

#: State width in bits (5 x 5 x 64).
STATE_BITS = 1600

#: State width in bytes.
STATE_BYTES = STATE_BITS // 8

#: Round constants RC[i] for the iota step mapping (paper Table 6).
ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

#: Rotation offsets r[x][y] for the rho step mapping, indexed as
#: ``RHO_OFFSETS[x][y]``.  The paper's Table 2 prints the same data with rows
#: labelled by y and columns by x (i.e. its entry at row y, column x equals
#: ``RHO_OFFSETS[x][y]``).
RHO_OFFSETS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

#: Rotation offsets in the paper's Table 2 layout: ``RHO_BY_ROW[y][x]``.
#: This is the layout the rho hardware lookup table uses, where the row
#: (plane) index y is supplied by the instruction immediate or the
#: ``lmul_cnt`` hardware counter.
RHO_BY_ROW = tuple(
    tuple(RHO_OFFSETS[x][y] for x in range(5)) for y in range(5)
)


def rotl64(value: int, amount: int) -> int:
    """Rotate a 64-bit ``value`` left by ``amount`` positions.

    ``amount`` is reduced modulo 64, matching the behaviour of the hardware
    rotators in the custom instructions.
    """
    amount %= 64
    if amount == 0:
        return value & MASK64
    value &= MASK64
    return ((value << amount) | (value >> (64 - amount))) & MASK64


def rotr64(value: int, amount: int) -> int:
    """Rotate a 64-bit ``value`` right by ``amount`` positions."""
    return rotl64(value, (-amount) % 64)
