"""N-way parallel Keccak-f[1600] over numpy lanes (paper Section 3.1).

The paper's central idea is to hold SN Keccak states side by side in the
vector register file and run all of them under the same instruction stream.
This module is the software analogue: a batch permutation over an
``(SN, 25)`` array of uint64 lanes, where every step mapping is applied to
all states at once.  It is used by the PQC workload generator
(:mod:`repro.pqc`) and as a fast executable model in property tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .constants import NUM_ROUNDS, RHO_OFFSETS, ROUND_CONSTANTS
from .state import KeccakState

_U64 = np.uint64


def _rotl(lanes: np.ndarray, amount: int) -> np.ndarray:
    """Rotate every uint64 element left by a compile-time constant amount."""
    amount %= 64
    if amount == 0:
        return lanes
    return (lanes << _U64(amount)) | (lanes >> _U64(64 - amount))


class ParallelKeccak:
    """A batch of SN Keccak states permuted in lock-step.

    The lane layout matches :class:`~repro.keccak.state.KeccakState`:
    ``lanes[s, 5 * y + x]`` is lane (x, y) of state s.
    """

    def __init__(self, num_states: int) -> None:
        if num_states < 1:
            raise ValueError(f"need at least one state, got {num_states}")
        self.num_states = num_states
        self.lanes = np.zeros((num_states, 25), dtype=_U64)

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_states(cls, states: Sequence[KeccakState]) -> "ParallelKeccak":
        """Pack individual states into a batch."""
        batch = cls(len(states))
        for s, state in enumerate(states):
            batch.lanes[s, :] = np.array(state.lanes, dtype=_U64)
        return batch

    def to_states(self) -> List[KeccakState]:
        """Unpack the batch into individual :class:`KeccakState` objects."""
        return [
            KeccakState([int(v) for v in self.lanes[s]])
            for s in range(self.num_states)
        ]

    def xor_block(self, state_index: int, block: bytes) -> None:
        """Absorb ``block`` into one state of the batch (sponge XOR)."""
        if len(block) > 200:
            raise ValueError("block larger than the state")
        padded = block + b"\x00" * (200 - len(block))
        words = np.frombuffer(padded, dtype="<u8")
        self.lanes[state_index, :] ^= words.astype(_U64)

    def extract_bytes(self, state_index: int, length: int) -> bytes:
        """Read the first ``length`` bytes of one state (sponge squeeze)."""
        if not 0 <= length <= 200:
            raise ValueError(f"length out of range: {length}")
        raw = self.lanes[state_index].astype("<u8").tobytes()
        return raw[:length]

    # -- step mappings (all states at once) -------------------------------------

    def _theta(self) -> None:
        lanes = self.lanes
        parity = np.zeros((self.num_states, 5), dtype=_U64)
        for x in range(5):
            column = lanes[:, x] ^ lanes[:, x + 5] ^ lanes[:, x + 10]
            parity[:, x] = column ^ lanes[:, x + 15] ^ lanes[:, x + 20]
        effect = np.empty_like(parity)
        for x in range(5):
            effect[:, x] = parity[:, (x - 1) % 5] ^ _rotl(
                parity[:, (x + 1) % 5], 1
            )
        for y in range(5):
            for x in range(5):
                lanes[:, 5 * y + x] ^= effect[:, x]

    def _rho(self) -> None:
        lanes = self.lanes
        for y in range(5):
            for x in range(5):
                offset = RHO_OFFSETS[x][y]
                if offset:
                    lanes[:, 5 * y + x] = _rotl(lanes[:, 5 * y + x], offset)

    def _pi(self) -> None:
        src = self.lanes.copy()
        for y in range(5):
            for x in range(5):
                self.lanes[:, 5 * y + x] = src[:, 5 * x + (x + 3 * y) % 5]

    def _chi(self) -> None:
        src = self.lanes.copy()
        for y in range(5):
            base = 5 * y
            for x in range(5):
                self.lanes[:, base + x] = src[:, base + x] ^ (
                    ~src[:, base + (x + 1) % 5] & src[:, base + (x + 2) % 5]
                )

    def _iota(self, round_index: int) -> None:
        self.lanes[:, 0] ^= _U64(ROUND_CONSTANTS[round_index])

    def round(self, round_index: int) -> None:
        """Apply one full round to every state in the batch."""
        self._theta()
        self._rho()
        self._pi()
        self._chi()
        self._iota(round_index)

    def permute(self) -> None:
        """Apply the full 24-round permutation to every state."""
        for round_index in range(NUM_ROUNDS):
            self.round(round_index)


def parallel_shake128(seeds: Sequence[bytes], length: int) -> List[bytes]:
    """SHAKE128 over many inputs with one batched permutation per block.

    Each seed must fit in a single rate block (168 bytes minus padding) and
    each output in a single squeeze block — the regime of the Kyber matrix
    expansion the paper's introduction motivates.  Returns one ``length``-
    byte output per seed.
    """
    rate = 168  # SHAKE128 rate in bytes
    for seed in seeds:
        if len(seed) > rate - 1:
            raise ValueError("seed does not fit in one SHAKE128 rate block")
    batch = ParallelKeccak(len(seeds))
    for s, seed in enumerate(seeds):
        block = bytearray(seed)
        block.append(0x1F)
        block.extend(b"\x00" * (rate - len(block)))
        block[rate - 1] ^= 0x80
        batch.xor_block(s, bytes(block))
    outputs = [bytearray() for _ in seeds]
    remaining = length
    while remaining > 0:
        batch.permute()
        take = min(rate, remaining)
        for s in range(len(seeds)):
            outputs[s].extend(batch.extract_bytes(s, take))
        remaining -= take
    return [bytes(out) for out in outputs]
