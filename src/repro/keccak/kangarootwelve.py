"""TurboSHAKE and KangarooTwelve (reduced-round Keccak XOFs).

TurboSHAKE is the 12-round variant of SHAKE (Keccak-p[1600, 12] in a
sponge, domain byte D in 0x01..0x7F); KangarooTwelve is the tree-hashing
XOF built on TurboSHAKE128 with 8 KiB chunks.  Both are checked against
the published KangarooTwelve test vectors.

These matter for the paper's context: K12 is the fast hashing mode modern
Keccak deployments use, and its permutation is the same hardware the
custom vector instructions accelerate — just 12 rounds instead of 24, so
every cycle result in this repository halves almost exactly for K12
workloads.
"""

from __future__ import annotations

from functools import partial

from .permutation import keccak_p1600
from .sponge import Sponge

#: Chunk size of the KangarooTwelve tree (8 KiB).
K12_CHUNK_BYTES = 8192

#: Chaining-value length in bytes.
_CV_BYTES = 32

_PERM12 = partial(keccak_p1600, num_rounds=12)


def turboshake128(message: bytes, length: int,
                  domain: int = 0x1F) -> bytes:
    """TurboSHAKE128: 12-round SHAKE at capacity 256 (rate 168)."""
    return _turboshake(message, length, domain, capacity_bits=256)


def turboshake256(message: bytes, length: int,
                  domain: int = 0x1F) -> bytes:
    """TurboSHAKE256: 12-round SHAKE at capacity 512 (rate 136)."""
    return _turboshake(message, length, domain, capacity_bits=512)


def _turboshake(message: bytes, length: int, domain: int,
                capacity_bits: int) -> bytes:
    if not 0x01 <= domain <= 0x7F:
        raise ValueError(
            f"TurboSHAKE domain byte must be in 0x01..0x7F, got {domain:#x}"
        )
    sponge = Sponge(capacity_bits, suffix=domain, permutation=_PERM12)
    return sponge.absorb(message).squeeze(length)


def length_encode(value: int) -> bytes:
    """K12's length_encode: minimal big-endian digits + a length byte.

    Unlike SP 800-185's right_encode, ``length_encode(0)`` is the single
    byte ``00`` (zero digits).
    """
    if value < 0:
        raise ValueError(f"cannot encode negative value: {value}")
    digits = bytearray()
    while value:
        digits.insert(0, value & 0xFF)
        value >>= 8
    return bytes(digits) + bytes([len(digits)])


def kangarootwelve(message: bytes, length: int,
                   customization: bytes = b"") -> bytes:
    """KangarooTwelve(M, C, L): tree-hashing XOF over TurboSHAKE128.

    Inputs up to one 8 KiB chunk hash in a single TurboSHAKE128 call
    (domain 0x07); longer inputs hash the remaining chunks as tree leaves
    (domain 0x0B) whose chaining values are absorbed into the final node
    (domain 0x06).
    """
    if length < 0:
        raise ValueError(f"cannot squeeze {length} bytes")
    stream = message + customization + length_encode(len(customization))
    if len(stream) <= K12_CHUNK_BYTES:
        return turboshake128(stream, length, domain=0x07)

    head = stream[:K12_CHUNK_BYTES]
    leaves = [
        stream[offset : offset + K12_CHUNK_BYTES]
        for offset in range(K12_CHUNK_BYTES, len(stream), K12_CHUNK_BYTES)
    ]
    node = bytearray(head)
    node.extend(b"\x03" + b"\x00" * 7)
    for leaf in leaves:
        node.extend(turboshake128(leaf, _CV_BYTES, domain=0x0B))
    node.extend(length_encode(len(leaves)))
    node.extend(b"\xff\xff")
    return turboshake128(bytes(node), length, domain=0x06)


def k12_pattern(length: int) -> bytes:
    """The cyclic test pattern of the K12 specification (0x00..0xFA)."""
    return bytes(i % 0xFB for i in range(length))
