"""TurboSHAKE and KangarooTwelve (reduced-round Keccak XOFs).

TurboSHAKE is the 12-round variant of SHAKE (Keccak-p[1600, 12] in a
sponge, domain byte D in 0x01..0x7F); KangarooTwelve is the tree-hashing
XOF built on TurboSHAKE128 with 8 KiB chunks.  Both are checked against
the published KangarooTwelve test vectors.

These matter for the paper's context: K12 is the fast hashing mode modern
Keccak deployments use, and its permutation is the same hardware the
custom vector instructions accelerate — just 12 rounds instead of 24, so
every cycle result in this repository halves almost exactly for K12
workloads.

K12's leaf chunks are *independent* sponges, so multi-chunk inputs hash
their leaves through the tree planner (:mod:`repro.keccak.treehash`):
lane-width groups on the SoA mega-batch kernels by default, fanned out
across the worker pool for large inputs, and the sequential pure-Python
sponge when the planner declines (tiny inputs, ``engine="reference"``).
All paths are bit-identical; the final node is always absorbed by the
streaming sponge so ``read``-style incremental squeezing works.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from .permutation import keccak_p1600
from .sponge import Sponge

#: Chunk size of the KangarooTwelve tree (8 KiB).
K12_CHUNK_BYTES = 8192

#: Chaining-value length in bytes.
_CV_BYTES = 32

_PERM12 = partial(keccak_p1600, num_rounds=12)


def turboshake128(message: bytes, length: int,
                  domain: int = 0x1F) -> bytes:
    """TurboSHAKE128: 12-round SHAKE at capacity 256 (rate 168)."""
    return _turboshake(message, length, domain, capacity_bits=256)


def turboshake256(message: bytes, length: int,
                  domain: int = 0x1F) -> bytes:
    """TurboSHAKE256: 12-round SHAKE at capacity 512 (rate 136)."""
    return _turboshake(message, length, domain, capacity_bits=512)


def _turboshake(message: bytes, length: int, domain: int,
                capacity_bits: int) -> bytes:
    return turboshake_sponge(domain, capacity_bits) \
        .absorb(message).squeeze(length)


def turboshake_sponge(domain: int = 0x1F,
                      capacity_bits: int = 256) -> Sponge:
    """A streaming 12-round sponge with TurboSHAKE domain validation."""
    if not 0x01 <= domain <= 0x7F:
        raise ValueError(
            f"TurboSHAKE domain byte must be in 0x01..0x7F, got {domain:#x}"
        )
    return Sponge(capacity_bits, suffix=domain, permutation=_PERM12)


def length_encode(value: int) -> bytes:
    """K12's length_encode: minimal big-endian digits + a length byte.

    Unlike SP 800-185's right_encode, ``length_encode(0)`` is the single
    byte ``00`` (zero digits).
    """
    if value < 0:
        raise ValueError(f"cannot encode negative value: {value}")
    digits = bytearray()
    while value:
        digits.insert(0, value & 0xFF)
        value >>= 8
    return bytes(digits) + bytes([len(digits)])


def k12_sponge(message: bytes, customization: bytes = b"", *,
               engine: Optional[str] = None,
               workers: Optional[int] = None,
               transport: str = "auto",
               checkpoint: Optional[str] = None) -> Sponge:
    """The finalizable KangarooTwelve sponge for (M, C): absorb done.

    Returns the root-node sponge with every input byte absorbed —
    squeeze it for output (streaming; this is what backs the
    :class:`K12` object's ``read``).  Single-chunk inputs absorb into a
    domain-0x07 TurboSHAKE128 sponge directly; multi-chunk inputs hash
    their leaf chunks (domain 0x0B) through the tree planner with the
    requested ``engine``/``workers``/``transport`` and absorb the head,
    chaining values and framing into the domain-0x06 final node.
    """
    stream = bytes(message) + bytes(customization) \
        + length_encode(len(customization))
    if len(stream) <= K12_CHUNK_BYTES:
        return turboshake_sponge(domain=0x07).absorb(stream)

    from .treehash import K12_LEAF, hash_leaves

    head = stream[:K12_CHUNK_BYTES]
    leaves = [
        stream[offset : offset + K12_CHUNK_BYTES]
        for offset in range(K12_CHUNK_BYTES, len(stream), K12_CHUNK_BYTES)
    ]
    cvs = hash_leaves(leaves, K12_LEAF, engine=engine, workers=workers,
                      transport=transport, checkpoint=checkpoint)
    node = turboshake_sponge(domain=0x06)
    node.absorb(head)
    node.absorb(b"\x03" + b"\x00" * 7)
    for cv in cvs:
        node.absorb(cv)
    node.absorb(length_encode(len(leaves)))
    node.absorb(b"\xff\xff")
    return node


def kangarootwelve(message: bytes, length: int,
                   customization: bytes = b"", *,
                   engine: Optional[str] = None,
                   workers: Optional[int] = None,
                   transport: str = "auto",
                   checkpoint: Optional[str] = None) -> bytes:
    """KangarooTwelve(M, C, L): tree-hashing XOF over TurboSHAKE128.

    Inputs up to one 8 KiB chunk hash in a single TurboSHAKE128 call
    (domain 0x07); longer inputs hash the remaining chunks as tree leaves
    (domain 0x0B) whose chaining values are absorbed into the final node
    (domain 0x06).  Leaves run through the tree planner: ``engine``
    selects the batch engine (default: the SoA mega-batch kernels, with
    ``"reference"`` forcing the sequential pure-Python path), ``workers``
    fans large leaf sets across the process pool, ``transport`` and
    ``checkpoint`` pass through to :func:`repro.programs.run_many` on
    the pooled path.  Every combination is bit-identical.
    """
    if length < 0:
        raise ValueError(f"cannot squeeze {length} bytes")
    sponge = k12_sponge(message, customization, engine=engine,
                        workers=workers, transport=transport,
                        checkpoint=checkpoint)
    return sponge.squeeze(length)


class K12:
    """hashlib-style KangarooTwelve object with a streaming squeeze.

    ``update`` buffers message bytes (the tree cut depends on the final
    length, so leaves are hashed at finalization); ``digest(length)`` is
    restartable, ``read(length)`` streams successive output without
    re-absorbing — the serve daemon's long-output path.
    """

    name = "k12"
    #: TurboSHAKE128 rate (hashlib-compatible block size).
    block_size = 168

    def __init__(self, data: bytes = b"", customization: bytes = b"", *,
                 engine: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        self._buffer = bytearray(data)
        self._customization = bytes(customization)
        self._engine = engine
        self._workers = workers
        self._final: Optional[Sponge] = None
        self._reader: Optional[Sponge] = None

    @property
    def squeezing(self) -> bool:
        """True once ``read`` has started streaming output."""
        return self._reader is not None

    def update(self, data: bytes) -> None:
        """Absorb more message bytes (before any ``read``)."""
        if self._reader is not None:
            raise RuntimeError("cannot absorb after read() started")
        self._final = None
        self._buffer.extend(data)

    def _final_sponge(self) -> Sponge:
        if self._final is None:
            self._final = k12_sponge(bytes(self._buffer),
                                     self._customization,
                                     engine=self._engine,
                                     workers=self._workers)
        return self._final

    def digest(self, length: int) -> bytes:
        """``length`` output bytes (restartable: copies the sponge)."""
        return self._final_sponge().copy().squeeze(length)

    def hexdigest(self, length: int) -> str:
        """``length`` output bytes as hex."""
        return self.digest(length).hex()

    def read(self, length: int) -> bytes:
        """Streaming squeeze: successive calls continue the stream."""
        if self._reader is None:
            self._reader = self._final_sponge().copy()
        return self._reader.squeeze(length)

    def copy(self) -> "K12":
        clone = K12(customization=self._customization,
                    engine=self._engine, workers=self._workers)
        clone._buffer = bytearray(self._buffer)
        clone._final = self._final
        clone._reader = None if self._reader is None else self._reader.copy()
        return clone


def k12_pattern(length: int) -> bytes:
    """The cyclic test pattern of the K12 specification (0x00..0xFA)."""
    return bytes(i % 0xFB for i in range(length))
