"""The six SHA-3 family functions (FIPS 202) plus XOF objects.

SHA3-224/256/384/512 fixed-length hashes and the SHAKE128/256 extendable
output functions, all built on :class:`repro.keccak.sponge.Sponge`.  The API
mirrors :mod:`hashlib` (``update`` / ``digest`` / ``hexdigest``), which the
test suite exploits to cross-check every function against CPython's own
SHA-3 implementation.  Every XOF object additionally supports a streaming
``read(length)`` squeeze: successive calls continue the output stream
without re-absorbing the message.

:func:`new` also constructs the reduced-round and tree-hashing XOFs
(TurboSHAKE128/256, KangarooTwelve, ParallelHash128/256) so serving
clients can reach the whole family through one hashlib-style factory.
"""

from __future__ import annotations

from functools import partial

from .kangarootwelve import K12
from .permutation import keccak_f1600, keccak_p1600
from .sponge import SHA3_SUFFIX, SHAKE_SUFFIX, Sponge
from .treehash import ParallelHash128, ParallelHash256


class _Sha3Base:
    """Common machinery for the fixed-output SHA-3 hashes."""

    #: Output length in bits; set by subclasses.
    output_bits: int = 0
    name: str = "sha3"

    def __init__(self, data: bytes = b"") -> None:
        if self.output_bits == 0:
            raise TypeError("instantiate a concrete SHA3 subclass")
        # FIPS 202: capacity = 2 * output length.
        self._sponge = Sponge(2 * self.output_bits, SHA3_SUFFIX)
        if data:
            self._sponge.absorb(data)

    @property
    def digest_size(self) -> int:
        """Digest size in bytes (hashlib-compatible)."""
        return self.output_bits // 8

    @property
    def block_size(self) -> int:
        """Rate in bytes (hashlib-compatible block size)."""
        return self._sponge.rate_bytes

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._sponge.absorb(data)

    def digest(self) -> bytes:
        """Return the digest of everything absorbed so far."""
        return self._sponge.copy().squeeze(self.digest_size)

    def hexdigest(self) -> str:
        """Digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "_Sha3Base":
        clone = type(self)()
        clone._sponge = self._sponge.copy()
        return clone


class SHA3_224(_Sha3Base):
    """SHA3-224: 224-bit digest, capacity 448, rate 1152."""

    output_bits = 224
    name = "sha3_224"


class SHA3_256(_Sha3Base):
    """SHA3-256: 256-bit digest, capacity 512, rate 1088."""

    output_bits = 256
    name = "sha3_256"


class SHA3_384(_Sha3Base):
    """SHA3-384: 384-bit digest, capacity 768, rate 832."""

    output_bits = 384
    name = "sha3_384"


class SHA3_512(_Sha3Base):
    """SHA3-512: 512-bit digest, capacity 1024, rate 576."""

    output_bits = 512
    name = "sha3_512"


class _ShakeBase:
    """Common machinery for the SHAKE-shaped extendable-output functions.

    Subclasses set the strength (capacity = 2 * strength) and may
    override the domain suffix and permutation — TurboSHAKE reuses this
    machinery with the 12-round permutation.
    """

    #: Security strength in bits; capacity = 2 * strength.
    strength_bits: int = 0
    name: str = "shake"
    #: Domain-separation suffix byte absorbed at finalization.
    suffix: int = SHAKE_SUFFIX
    #: The sponge's permutation (FIPS 202's 24 rounds by default).
    permutation = staticmethod(keccak_f1600)

    def __init__(self, data: bytes = b"") -> None:
        if self.strength_bits == 0:
            raise TypeError("instantiate a concrete SHAKE subclass")
        self._sponge = Sponge(2 * self.strength_bits, self.suffix,
                              self.permutation)
        if data:
            self._sponge.absorb(data)

    @property
    def block_size(self) -> int:
        """Rate in bytes."""
        return self._sponge.rate_bytes

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._sponge.absorb(data)

    def digest(self, length: int) -> bytes:
        """Return ``length`` output bytes (restartable: copies the sponge)."""
        return self._sponge.copy().squeeze(length)

    def hexdigest(self, length: int) -> str:
        """``length`` output bytes as hex."""
        return self.digest(length).hex()

    def read(self, length: int) -> bytes:
        """Streaming squeeze: successive calls continue the output stream."""
        return self._sponge.squeeze(length)

    @property
    def squeezing(self) -> bool:
        """True once ``read`` has started streaming output."""
        return self._sponge.squeezing

    def copy(self) -> "_ShakeBase":
        clone = type(self)()
        clone._sponge = self._sponge.copy()
        return clone


class SHAKE128(_ShakeBase):
    """SHAKE128 XOF: 128-bit strength, capacity 256, rate 1344."""

    strength_bits = 128
    name = "shake_128"


class SHAKE256(_ShakeBase):
    """SHAKE256 XOF: 256-bit strength, capacity 512, rate 1088."""

    strength_bits = 256
    name = "shake_256"


class TurboSHAKE128(_ShakeBase):
    """TurboSHAKE128 XOF: 12 rounds, capacity 256, domain byte 0x1F."""

    strength_bits = 128
    name = "turboshake128"
    permutation = staticmethod(partial(keccak_p1600, num_rounds=12))


class TurboSHAKE256(_ShakeBase):
    """TurboSHAKE256 XOF: 12 rounds, capacity 512, domain byte 0x1F."""

    strength_bits = 256
    name = "turboshake256"
    permutation = staticmethod(partial(keccak_p1600, num_rounds=12))


# -- one-shot helpers ---------------------------------------------------------


def sha3_224(data: bytes) -> bytes:
    """One-shot SHA3-224 digest."""
    return SHA3_224(data).digest()


def sha3_256(data: bytes) -> bytes:
    """One-shot SHA3-256 digest."""
    return SHA3_256(data).digest()


def sha3_384(data: bytes) -> bytes:
    """One-shot SHA3-384 digest."""
    return SHA3_384(data).digest()


def sha3_512(data: bytes) -> bytes:
    """One-shot SHA3-512 digest."""
    return SHA3_512(data).digest()


def shake128(data: bytes, length: int) -> bytes:
    """One-shot SHAKE128 output of ``length`` bytes."""
    return SHAKE128(data).digest(length)


def shake256(data: bytes, length: int) -> bytes:
    """One-shot SHAKE256 output of ``length`` bytes."""
    return SHAKE256(data).digest(length)


#: All fixed-length hash classes, keyed by name.
SHA3_VARIANTS = {
    "sha3_224": SHA3_224,
    "sha3_256": SHA3_256,
    "sha3_384": SHA3_384,
    "sha3_512": SHA3_512,
}

#: Both XOF classes, keyed by name.
SHAKE_VARIANTS = {
    "shake_128": SHAKE128,
    "shake_256": SHAKE256,
}

#: Constructor registry for :func:`new`: canonical names plus the
#: underscore-free spellings hashlib also accepts.  The XOF entries
#: (SHAKE, TurboSHAKE, K12, ParallelHash) all expose the streaming
#: ``read(length)`` squeeze on top of ``digest(length)``.
_CONSTRUCTORS = {**SHA3_VARIANTS, **SHAKE_VARIANTS,
                 "shake128": SHAKE128, "shake256": SHAKE256,
                 "turboshake128": TurboSHAKE128,
                 "turboshake_128": TurboSHAKE128,
                 "turboshake256": TurboSHAKE256,
                 "turboshake_256": TurboSHAKE256,
                 "k12": K12,
                 "kangarootwelve": K12,
                 "parallelhash128": ParallelHash128,
                 "parallelhash_128": ParallelHash128,
                 "parallelhash256": ParallelHash256,
                 "parallelhash_256": ParallelHash256}


def new(name: str, data: bytes = b""):
    """hashlib-style constructor: ``new("sha3_256", b"...")``.

    Accepts the FIPS 202 family names in any case, with ``-`` or ``_``
    separators (``"SHA3-256"``, ``"shake_128"``, ``"shake128"``...),
    plus the reduced-round and tree-hashing XOFs: ``"turboshake128"``,
    ``"turboshake256"``, ``"k12"``/``"kangarootwelve"`` and
    ``"parallelhash128"``/``"parallelhash256"``.
    Raises ``ValueError`` for anything else, like ``hashlib.new``.
    """
    normalized = name.strip().lower().replace("-", "_")
    try:
        constructor = _CONSTRUCTORS[normalized]
    except KeyError:
        raise ValueError(f"unsupported hash type {name!r}") from None
    return constructor(data)
