"""32-bit lane decompositions (paper Section 3.2).

Two ways to run 64-bit Keccak lanes on a 32-bit datapath:

* **hi/lo split** — the paper's choice: the most-significant and
  least-significant 32-bit halves are stored separately (Fig. 6).  No
  pre/post transformation of the data is needed; the price is that a 64-bit
  rotation must be synthesized from the two halves (the ``v32lrho`` /
  ``v32hrho`` / ``v32lrotup`` / ``v32hrotup`` custom instructions).
* **bit interleaving** — the common software technique the paper discusses
  and rejects: odd bits in one word, even bits in another, which turns a
  64-bit rotation into two independent 32-bit rotations but requires
  interleave/deinterleave passes around the permutation.

Both are implemented so the trade-off can be measured.
"""

from __future__ import annotations

from typing import List, Tuple

from .constants import MASK64

MASK32 = (1 << 32) - 1


def split_hi_lo(lane: int) -> Tuple[int, int]:
    """Split a 64-bit lane into (hi32, lo32) — the paper's Fig. 6 layout."""
    if not 0 <= lane <= MASK64:
        raise ValueError(f"lane out of 64-bit range: {lane:#x}")
    return (lane >> 32) & MASK32, lane & MASK32


def join_hi_lo(hi: int, lo: int) -> int:
    """Rejoin (hi32, lo32) halves into a 64-bit lane."""
    if not 0 <= hi <= MASK32 or not 0 <= lo <= MASK32:
        raise ValueError("halves must be 32-bit values")
    return (hi << 32) | lo


def rotate_pair_left(hi: int, lo: int, amount: int) -> Tuple[int, int]:
    """Rotate the 64-bit value ``hi||lo`` left by ``amount``; return halves.

    This is the operation the ``v32lrho``/``v32hrho`` instructions perform
    in hardware: concatenate, rotate, split.
    """
    value = join_hi_lo(hi, lo)
    amount %= 64
    rotated = ((value << amount) | (value >> (64 - amount))) & MASK64 \
        if amount else value
    return split_hi_lo(rotated)


# -- bit interleaving ---------------------------------------------------------


def _spread_bits(word: int) -> int:
    """Spread the low 32 bits of ``word`` into the even positions of 64."""
    x = word & MASK32
    x = (x | (x << 16)) & 0x0000FFFF0000FFFF
    x = (x | (x << 8)) & 0x00FF00FF00FF00FF
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x << 2)) & 0x3333333333333333
    x = (x | (x << 1)) & 0x5555555555555555
    return x


def _gather_bits(word: int) -> int:
    """Gather the even-position bits of a 64-bit ``word`` into 32 bits."""
    x = word & 0x5555555555555555
    x = (x | (x >> 1)) & 0x3333333333333333
    x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x >> 4)) & 0x00FF00FF00FF00FF
    x = (x | (x >> 8)) & 0x0000FFFF0000FFFF
    x = (x | (x >> 16)) & 0x00000000FFFFFFFF
    return x


def interleave(lane: int) -> Tuple[int, int]:
    """Split a 64-bit lane into (even_bits, odd_bits) 32-bit words."""
    if not 0 <= lane <= MASK64:
        raise ValueError(f"lane out of 64-bit range: {lane:#x}")
    even = _gather_bits(lane)
    odd = _gather_bits(lane >> 1)
    return even, odd


def deinterleave(even: int, odd: int) -> int:
    """Inverse of :func:`interleave`."""
    if not 0 <= even <= MASK32 or not 0 <= odd <= MASK32:
        raise ValueError("interleaved words must be 32-bit values")
    return _spread_bits(even) | (_spread_bits(odd) << 1)


def rotate_interleaved(even: int, odd: int, amount: int) -> Tuple[int, int]:
    """Rotate an interleaved lane left by ``amount`` using 32-bit rotates.

    This is why software 32-bit Keccak implementations interleave: a 64-bit
    rotation by ``n`` becomes two 32-bit rotations (by ``n//2`` each if n is
    even; by ``(n+1)//2`` and ``n//2`` with a half swap if n is odd).
    """
    amount %= 64

    def rotl32(w: int, n: int) -> int:
        n %= 32
        if n == 0:
            return w & MASK32
        return ((w << n) | (w >> (32 - n))) & MASK32

    if amount % 2 == 0:
        return rotl32(even, amount // 2), rotl32(odd, amount // 2)
    return rotl32(odd, (amount + 1) // 2), rotl32(even, amount // 2)


def interleave_state(lanes: List[int]) -> Tuple[List[int], List[int]]:
    """Interleave all 25 lanes; returns (even_words, odd_words)."""
    evens, odds = [], []
    for lane in lanes:
        even, odd = interleave(lane)
        evens.append(even)
        odds.append(odd)
    return evens, odds


def deinterleave_state(evens: List[int], odds: List[int]) -> List[int]:
    """Inverse of :func:`interleave_state`."""
    if len(evens) != len(odds):
        raise ValueError("even/odd word lists must have equal length")
    return [deinterleave(e, o) for e, o in zip(evens, odds)]
