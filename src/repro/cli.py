"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``tables``
    Regenerate Tables 7 and 8 and the Section 4.2 headline report.
``sweep``
    Design-space sweep with Pareto frontier (includes the fused variant).
``explore``
    Distributed design-space exploration across timing models: sweep
    (EleNum, ELEN, LMUL, register banks, issue width) over the worker
    pool, join the calibrated area model, emit an area-vs-throughput
    Pareto-front artifact (``--out``), and verify the paper pins
    (``--check-pins``).
``hash``
    Hash a file or string with any SHA-3 family function — optionally
    executing every permutation on the processor simulator.
``run``
    Run one Keccak configuration on the simulator and print its metrics.
``batch``
    Hash a batch of generated messages across a worker pool
    (``repro.run_many``), optionally verifying against ``hashlib``;
    supports checkpoint/resume (``--resume``) and the hardened pool's
    quarantine report (``--quarantine-report``).
``serve``
    Run the traffic-hardened hashing daemon: asyncio front end over a
    unix socket and/or TCP with token-bucket admission, bounded queues,
    per-request deadlines, batch coalescing onto the engines, rolling
    worker restarts and graceful SIGTERM drain (``/metrics`` and
    ``/debug/timeline`` expose the observability registry).
``loadgen``
    Open-loop load generator against a running daemon; reports
    per-outcome counts and p50/p99 latency, optionally verifying every
    digest against ``hashlib`` (exit 1 on mismatch or too few
    successes).
``faultcampaign``
    Seeded fault-injection campaign over the execution engines; fails
    (exit 1) on any silent divergence.
``stats``
    The benchmark trajectory: print the committed
    ``benchmarks/baseline/`` snapshot, validate it
    (``--check-baseline``), diff a fresh ``--bench-json`` run against it
    (``--bench-dir``, exit 1 on >15% normalized wall-clock regressions
    or any cycle change), or refresh it (``--update-baseline``).
``profile``
    Run a workload with metrics armed and print the registry snapshot;
    ``--timeline FILE`` additionally exports a Chrome trace_event JSON
    viewable in Perfetto.
``asm`` / ``dis``
    Assemble a source file to machine words / disassemble words back.

Bad input (unreadable files, malformed hex, invalid parameters) exits
with status 2 and a one-line diagnostic on stderr; simulation or pool
failures exit 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .assembler import assemble, disassemble
from .keccak.hashes import SHA3_VARIANTS, SHAKE_VARIANTS
from .sim.exceptions import SimulationError


def _cmd_tables(args: argparse.Namespace) -> int:
    from .eval import (
        generate_report,
        generate_table7,
        generate_table8,
        render_report,
        render_table,
    )

    print(render_table(generate_table7(), "Table 7 — 64-bit architectures"))
    print()
    print(render_table(generate_table8(), "Table 8 — 32-bit architectures"))
    print()
    print(render_report(generate_report()))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .eval import pareto_frontier, render_sweep, sweep_design_space

    points = sweep_design_space(include_fused=not args.no_fused)
    print(render_sweep(points))
    print()
    print("Pareto frontier (throughput vs area):")
    for p in pareto_frontier(points):
        print(f"  {p.label:48s} {p.throughput_e3:9.2f} tput e3  "
              f"{p.area_slices:8.0f} slices")
    return 0


def _parse_csv_ints(text: str, what: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"{what} must be a comma-separated integer list, "
                         f"got {text!r}")


def _cmd_explore(args: argparse.Namespace) -> int:
    from .eval import explore as explore_mod

    elenums = _parse_csv_ints(args.elenums, "--elenums")
    banks = _parse_csv_ints(args.banks, "--banks")
    issue_widths = _parse_csv_ints(args.issue_widths, "--issue-widths")
    variants = []
    for part in args.variants.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            elen, lmul = part.split("x")
            variants.append((int(elen), int(lmul)))
        except ValueError:
            raise ValueError(f"--variants entries look like 64x8, "
                             f"got {part!r}")
    chaining = (False, True) if args.chaining else (False,)
    grid = explore_mod.explore_grid(
        elenums=elenums, variants=variants, banks=banks,
        issue_widths=issue_widths, chaining=chaining)
    results = explore_mod.explore(grid, workers=args.workers,
                                  transport=args.transport)
    print(explore_mod.render_explore(results, top=args.top))
    doc = explore_mod.build_artifact(results)
    explore_mod.validate_artifact(doc)
    if args.out:
        path = explore_mod.write_artifact(doc, args.out)
        print(f"# wrote {len(doc['points'])}-point Pareto artifact to "
              f"{path}", file=sys.stderr)
    if args.check_pins:
        problems = explore_mod.check_pins(doc)
        if problems:
            for problem in problems:
                print(f"pin mismatch: {problem}", file=sys.stderr)
            return 1
        defaults = sum(1 for row in doc["points"] if row["default_timing"])
        print(f"# pins ok: {defaults} default-timing row(s) reproduce "
              f"the paper cycle pins exactly", file=sys.stderr)
    return 0


def _cmd_hash(args: argparse.Namespace) -> int:
    if args.file:
        with open(args.file, "rb") as handle:
            message = handle.read()
    else:
        message = args.string.encode()

    if args.simulate:
        from .programs import SimulatedPermutation
        from .keccak.sponge import Sponge, SHA3_SUFFIX, SHAKE_SUFFIX

        perm = SimulatedPermutation(elen=args.elen, lmul=args.lmul,
                                    elenum=5, engine=args.engine)
        if args.algorithm in SHA3_VARIANTS:
            bits = SHA3_VARIANTS[args.algorithm].output_bits
            sponge = Sponge(2 * bits, SHA3_SUFFIX, permutation=perm)
            digest = sponge.absorb(message).squeeze(bits // 8)
        else:
            strength = SHAKE_VARIANTS[args.algorithm].strength_bits
            sponge = Sponge(2 * strength, SHAKE_SUFFIX, permutation=perm)
            digest = sponge.absorb(message).squeeze(args.length)
        print(digest.hex())
        print(f"# {perm.call_count} permutations, "
              f"{perm.total_cycles} simulated cycles "
              f"({args.elen}-bit, LMUL={args.lmul})", file=sys.stderr)
        return 0

    if args.algorithm in SHA3_VARIANTS:
        print(SHA3_VARIANTS[args.algorithm](message).hexdigest())
    else:
        print(SHAKE_VARIANTS[args.algorithm](message).hexdigest(args.length))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import random

    from .keccak.permutation import keccak_f1600
    from .keccak.state import KeccakState
    from .programs import build_program, run

    rng = random.Random(args.seed)
    states = [
        KeccakState([rng.getrandbits(64) for _ in range(25)])
        for _ in range(args.states)
    ]
    program = build_program(args.elen, args.lmul, args.elenum)
    # Tracing records per-instruction cycles for the per-round metrics
    # but disqualifies engines that cannot reproduce it (compiled, soa);
    # an explicit --engine pick of one of those runs untraced (cycle
    # metrics fall back to whole-run totals — zero for functional
    # engines, which own no cycle model).
    from .sim import engines as engine_registry

    spec = engine_registry.maybe_get(args.engine)
    trace = spec is None or spec.caps.tracing
    result = run(program, states, trace=trace, engine=args.engine)
    correct = result.states == [keccak_f1600(s) for s in states]
    print(f"program:            {program.name} (EleNum={args.elenum}, "
          f"{args.states} state(s))")
    print(f"functionally exact: {correct}")
    print(f"cycles/round:       {result.cycles_per_round:.0f}")
    print(f"permutation cycles: {result.permutation_cycles}")
    print(f"cycles/byte:        {result.cycles_per_byte:.2f}")
    print(f"throughput x10^3:   {result.throughput_e3:.2f}")
    return 0 if correct else 1


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def _cmd_batch(args: argparse.Namespace) -> int:
    import hashlib
    import random
    import signal
    import time

    from .parallel_exec import RetryPolicy
    from .programs import run_many, run_many_report

    rng = random.Random(args.seed)
    messages = [rng.randbytes(args.size) for _ in range(args.count)]
    hardened = args.resume or args.quarantine_report
    start = time.perf_counter()
    # SIGTERM's default disposition kills the process without unwinding:
    # finally blocks never run, so shm arena leases leak and the
    # checkpoint manifest can be mid-update.  Routing it (like SIGINT)
    # through KeyboardInterrupt lets the scheduler's cleanup run — the
    # last atomically-written manifest survives and the run is always
    # resumable with --resume.
    previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    try:
        if hardened:
            outcome = run_many_report(messages, algorithm=args.algorithm,
                                      length=args.length,
                                      workers=args.workers,
                                      chunk_size=args.chunk_size,
                                      timeout=args.timeout,
                                      policy=RetryPolicy.hardened(),
                                      checkpoint=args.resume,
                                      engine=args.engine,
                                      transport=args.transport)
            digests = outcome.digests
        else:
            outcome = None
            digests = run_many(messages, algorithm=args.algorithm,
                               length=args.length, workers=args.workers,
                               chunk_size=args.chunk_size,
                               timeout=args.timeout,
                               engine=args.engine,
                               transport=args.transport)
    except KeyboardInterrupt:
        if args.resume:
            print(f"repro batch: interrupted; manifest {args.resume} is "
                  f"consistent — rerun with --resume to continue",
                  file=sys.stderr)
        else:
            print("repro batch: interrupted", file=sys.stderr)
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous)
    elapsed = time.perf_counter() - start
    print(f"hashed {args.count} messages of {args.size} bytes "
          f"with {args.workers} worker(s) in {elapsed:.2f}s "
          f"({args.count / elapsed:.1f} msg/s)")
    if args.quarantine_report and outcome is not None:
        print(outcome.summary())
    status = 0
    if outcome is not None and not outcome.ok:
        missing = sum(1 for d in digests if d is None)
        print(f"{missing} digest(s) missing from quarantined chunks",
              file=sys.stderr)
        status = 1
    if args.verify:
        # hashlib where it exists; the repository's pure-Python
        # reference path for the tree algorithms hashlib lacks.
        from .serve.loadgen import _expected_digest

        expected = [bytes.fromhex(
            _expected_digest(args.algorithm, args.length, m))
            for m in messages]
        completed = [(got, want) for got, want in zip(digests, expected)
                     if got is not None]
        oracle = "hashlib" if args.algorithm.startswith(("sha3", "shake")) \
            else "the pure-Python reference"
        if any(got != want for got, want in completed):
            print(f"MISMATCH against {oracle} ({args.algorithm})",
                  file=sys.stderr)
            return 1
        print(f"all {len(completed)} digest(s) match {oracle} "
              f"({args.algorithm})")
    elif digests and digests[0] is not None:
        print(digests[0].hex())
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import HashServer, ServeConfig

    if args.socket is None and args.host is None:
        raise ValueError("serve needs --socket PATH and/or --host ADDR")
    config = ServeConfig(
        socket_path=args.socket, host=args.host, port=args.port,
        workers=args.workers, engine=args.engine,
        max_queue=args.max_queue, rate=args.rate, burst=args.burst,
        batch_window=args.batch_window, max_batch=args.max_batch,
        default_deadline=args.deadline_ms / 1000.0,
        state_path=args.state, drain_grace=args.drain_grace,
        transport=args.transport)
    server = HashServer(config)
    asyncio.run(server.run())
    outcomes = ", ".join(f"{k}={v}" for k, v in
                         sorted(server.outcomes.items())) or "none"
    print(f"repro serve: drained cleanly ({outcomes})")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve import run_load

    if args.socket is None and args.host is None:
        raise ValueError("loadgen needs --socket PATH or --host ADDR")
    report = run_load(
        socket_path=args.socket, host=args.host, port=args.port,
        requests=args.requests, rate=args.rate, size=args.size,
        algorithm=args.algorithm, length=args.length,
        deadline_ms=args.deadline_ms, seed=args.seed,
        verify=args.verify)
    print(report.summary())
    if report.mismatches:
        print(f"{report.mismatches} digest mismatch(es) against hashlib",
              file=sys.stderr)
        return 1
    if report.ok < args.min_ok:
        print(f"only {report.ok} ok responses, expected at least "
              f"{args.min_ok}", file=sys.stderr)
        return 1
    return 0


def _cmd_faultcampaign(args: argparse.Namespace) -> int:
    from .resilience import run_campaign
    from .resilience.campaign import MODES, VARIANTS

    variants = tuple(args.variants.split(",")) if args.variants \
        else tuple(VARIANTS)
    modes = tuple(args.modes.split(",")) if args.modes else MODES
    for variant in variants:
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant: {variant!r} "
                             f"(choose from {', '.join(VARIANTS)})")
    report = run_campaign(num_faults=args.faults, seed=args.seed,
                          variants=variants, modes=modes,
                          crosscheck=not args.no_crosscheck)
    print(report.summary())
    if not report.zero_silent:
        for result in report.silent_divergences:
            print(f"SILENT: #{result.trial.index} "
                  f"[{result.trial.variant}/{result.trial.mode}] "
                  f"{result.trial.spec.describe()}: {result.detail}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .observability import trajectory

    baseline_dir = args.baseline or trajectory.default_baseline_dir()
    if args.update_baseline:
        if not args.bench_dir:
            raise ValueError("--update-baseline requires --bench-dir DIR "
                             "(a fresh --bench-json output directory)")
        fresh = trajectory.load_records(args.bench_dir)
        problems = trajectory.check_baseline(fresh)
        if problems:
            for problem in problems:
                print(f"refusing to update baseline: {problem}",
                      file=sys.stderr)
            return 1
        written = trajectory.write_baseline(fresh, baseline_dir)
        print(f"wrote {len(written)} baseline record(s) to {baseline_dir}")
        return 0

    baseline = trajectory.load_records(baseline_dir)
    if args.check_baseline:
        problems = trajectory.check_baseline(baseline)
        # The committed explore artifact rides in the same directory
        # (EXPLORE_pareto.json — ignored by the BENCH_ loader): when
        # present it must be schema-valid and its default-timing rows
        # must reproduce the paper cycle pins exactly.
        import os

        from .eval import explore as explore_mod

        artifact = os.path.join(baseline_dir, "EXPLORE_pareto.json")
        if os.path.exists(artifact):
            try:
                explore_mod.validate_artifact_file(artifact)
            except ValueError as exc:
                problems.append(f"explore artifact invalid: {exc}")
        if problems:
            for problem in problems:
                print(f"baseline problem: {problem}", file=sys.stderr)
            return 1
        print(f"baseline ok: {len(baseline)} record(s), "
              f"all {len(trajectory.PIN_BENCHES)} paper pin "
              f"benchmark(s) present")
        if os.path.exists(artifact):
            print(f"explore artifact ok: {artifact}")
        if not args.bench_dir:
            return 0
    if args.bench_dir:
        fresh = trajectory.load_records(args.bench_dir)
        report = trajectory.compare(fresh, baseline,
                                    threshold=args.threshold)
        print(report.summary())
        return 0 if report.ok else 1
    print(trajectory.aggregate(baseline))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import random

    from .keccak.state import KeccakState
    from .observability import metrics, timeline
    from .programs import Session, build_program, run_many

    rng = random.Random(args.seed)
    tl = timeline.start() if args.timeline else None
    metrics.arm()
    try:
        if args.workers:
            messages = [rng.randbytes(args.size)
                        for _ in range(args.count)]
            run_many(messages, workers=args.workers,
                     engine=args.engine)
        else:
            states = [
                KeccakState([rng.getrandbits(64) for _ in range(25)])
                for _ in range(args.states)
            ]
            program = build_program(args.elen, args.lmul, args.elenum)
            session = Session(engine=args.engine)
            for _ in range(args.repeat):
                session.run(program, states)
    finally:
        metrics.disarm()
        if tl is not None:
            timeline.stop()
    print(metrics.render_snapshot(metrics.registry().snapshot()))
    if tl is not None:
        path = tl.export(args.timeline)
        print(f"# timeline written to {path} — open in Perfetto "
              f"(ui.perfetto.dev) or chrome://tracing", file=sys.stderr)
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from .eval.instruction_mix import measure_instruction_mix
    from .keccak.state import KeccakState
    from .programs import (
        keccak32_lmul8,
        keccak64_fused,
        keccak64_lmul1,
        keccak64_lmul41,
        keccak64_lmul8,
    )

    builders = {
        "64-lmul1": keccak64_lmul1,
        "64-lmul41": keccak64_lmul41,
        "64-lmul8": keccak64_lmul8,
        "64-fused": keccak64_fused,
        "32-lmul8": keccak32_lmul8,
    }
    selected = [args.variant] if args.variant else list(builders)
    state = [KeccakState(list(range(25)))]
    for name in selected:
        mix = measure_instruction_mix(builders[name].build(5), state)
        print(mix.render())
        print()
    return 0


def _cmd_isa_doc(args: argparse.Namespace) -> int:
    from .isa import ISA
    from .isa.doc import render_isa_reference

    text = render_isa_reference(ISA)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        source = handle.read()
    program = assemble(source, base_address=args.base)
    if args.listing:
        print(program.listing())
    else:
        for inst in program.instructions:
            print(f"{inst.word:08x}")
    return 0


def _cmd_dis(args: argparse.Namespace) -> int:
    words: List[int] = []
    if args.source == "-":
        text = sys.stdin.read()
    else:
        with open(args.source) as handle:
            text = handle.read()
    for token in text.split():
        words.append(int(token, 16))
    for address_offset, line in enumerate(disassemble(words, args.base)):
        print(f"{args.base + 4 * address_offset:08x}:  {line}")
    return 0


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    from .sim.processor import ENGINES

    parser.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="simulator execution engine (auto = compiled when eligible, "
             "fused otherwise; soa = functional mega-batch kernels, "
             "digests only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Custom RISC-V vector extensions for SHA-3 "
                    "(DATE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate Tables 7/8 and the report")

    p_sweep = sub.add_parser("sweep", help="design-space sweep + Pareto")
    p_sweep.add_argument("--no-fused", action="store_true",
                         help="exclude the future-work fused variant")

    p_explore = sub.add_parser(
        "explore",
        help="distributed design-space exploration over timing models")
    p_explore.add_argument("--elenums", default="5,15,30",
                           help="comma-separated EleNum axis "
                                "(multiples of 5)")
    p_explore.add_argument("--variants", default="64x1,64x8,32x8",
                           help="comma-separated ELENxLMUL variants")
    p_explore.add_argument("--banks", default="1,2",
                           help="comma-separated vector register bank "
                                "counts")
    p_explore.add_argument("--issue-widths", default="1,2",
                           help="comma-separated scalar issue widths")
    p_explore.add_argument("--chaining", action="store_true",
                           help="also sweep chained configurations")
    p_explore.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = serial)")
    p_explore.add_argument("--transport", default="auto",
                           choices=("auto", "shm", "pickle"),
                           help="pool transport for parallel sweeps "
                                "(auto = shm)")
    p_explore.add_argument("--top", type=int, default=None,
                           help="print only the first N table rows")
    p_explore.add_argument("--out", default=None, metavar="FILE",
                           help="write the Pareto-front artifact JSON "
                                "here (schema-validated)")
    p_explore.add_argument("--check-pins", action="store_true",
                           help="exit 1 unless every default-timing row "
                                "reproduces the paper cycle pins exactly")

    p_hash = sub.add_parser("hash", help="hash with a SHA-3 function")
    p_hash.add_argument("algorithm",
                        choices=sorted(SHA3_VARIANTS) + sorted(SHAKE_VARIANTS))
    group = p_hash.add_mutually_exclusive_group(required=True)
    group.add_argument("--file", help="file to hash")
    group.add_argument("--string", help="literal string to hash")
    p_hash.add_argument("--length", type=int, default=32,
                        help="XOF output bytes (SHAKE only)")
    p_hash.add_argument("--simulate", action="store_true",
                        help="execute every permutation on the simulator")
    p_hash.add_argument("--elen", type=int, default=64, choices=(32, 64))
    p_hash.add_argument("--lmul", type=int, default=8, choices=(1, 8))
    _add_engine_argument(p_hash)

    p_run = sub.add_parser("run", help="run a Keccak config on the simulator")
    p_run.add_argument("--elen", type=int, default=64, choices=(32, 64))
    p_run.add_argument("--lmul", type=int, default=8, choices=(1, 8))
    p_run.add_argument("--elenum", type=int, default=5)
    p_run.add_argument("--states", type=int, default=1)
    p_run.add_argument("--seed", type=int, default=0)
    _add_engine_argument(p_run)

    p_batch = sub.add_parser(
        "batch", help="hash a generated batch across a worker pool")
    p_batch.add_argument("--count", type=int, default=60,
                         help="number of messages")
    p_batch.add_argument("--size", type=int, default=64,
                         help="bytes per message")
    p_batch.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial)")
    p_batch.add_argument("--chunk-size", type=int, default=None,
                         help="messages per pool chunk")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument("--algorithm", default="sha3_256",
                         choices=("sha3_256", "shake128", "shake256",
                                  "k12", "parallelhash128",
                                  "parallelhash256"),
                         help="batch algorithm (tree algorithms hash "
                              "each message as its own leaf tree)")
    p_batch.add_argument("--length", type=int, default=32,
                         help="XOF output bytes (ignored by sha3_256)")
    p_batch.add_argument("--verify", action="store_true",
                         help="check every digest against hashlib (or "
                              "the pure-Python reference for the "
                              "algorithms hashlib lacks)")
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-chunk timeout in seconds")
    p_batch.add_argument("--resume", metavar="MANIFEST", default=None,
                         help="checkpoint manifest path: created on first "
                              "run, completed chunks are skipped on rerun")
    _add_engine_argument(p_batch)
    p_batch.add_argument("--transport", choices=("auto", "shm", "pickle"),
                         default="auto",
                         help="batch payload transport: shm = zero-copy "
                              "shared-memory arena, pickle = queue "
                              "serialization (auto picks shm for large "
                              "multi-worker batches)")
    p_batch.add_argument("--quarantine-report", action="store_true",
                         help="run with the hardened retry policy and "
                              "print the quarantine/pool report")

    p_serve = sub.add_parser(
        "serve", help="run the traffic-hardened hashing daemon")
    p_serve.add_argument("--socket", default=None,
                         help="unix socket path to listen on")
    p_serve.add_argument("--host", default=None,
                         help="TCP address to listen on (with --port)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="pool workers (0 = inline execution)")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="bounded accept queue; full = 429")
    p_serve.add_argument("--rate", type=float, default=0.0,
                         help="token-bucket admission rate in req/s "
                              "(0 = unlimited)")
    p_serve.add_argument("--burst", type=float, default=64.0,
                         help="token-bucket burst capacity")
    p_serve.add_argument("--batch-window", type=float, default=0.002,
                         help="coalescing window in seconds")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="max requests per coalesced dispatch")
    p_serve.add_argument("--deadline-ms", type=float, default=5000.0,
                         help="default per-request deadline (clients "
                              "override with X-Deadline-Ms)")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds to flush in-flight work on "
                              "SIGTERM")
    p_serve.add_argument("--state", default=None,
                         help="write a drain checkpoint JSON here on "
                              "graceful shutdown")
    p_serve.add_argument("--transport", default="auto",
                         choices=("auto", "shm", "pickle"),
                         help="pool byte transport (as in batch)")
    _add_engine_argument(p_serve)

    p_load = sub.add_parser(
        "loadgen", help="open-loop load generator against a daemon")
    p_load.add_argument("--socket", default=None,
                        help="daemon unix socket path")
    p_load.add_argument("--host", default=None, help="daemon TCP host")
    p_load.add_argument("--port", type=int, default=0,
                        help="daemon TCP port")
    p_load.add_argument("--requests", type=int, default=100)
    p_load.add_argument("--rate", type=float, default=0.0,
                        help="open-loop arrival rate in req/s "
                             "(0 = max client concurrency)")
    p_load.add_argument("--size", type=int, default=64,
                        help="bytes per message")
    p_load.add_argument("--algorithm", default="sha3_256",
                        choices=("sha3_256", "shake128", "shake256",
                                 "k12", "parallelhash128",
                                 "parallelhash256"))
    p_load.add_argument("--length", type=int, default=32,
                        help="XOF output bytes (any non-sha3_256 "
                             "algorithm)")
    p_load.add_argument("--deadline-ms", type=float, default=None,
                        help="send X-Deadline-Ms with every request")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--verify", action="store_true",
                        help="check every 200 body against hashlib")
    p_load.add_argument("--min-ok", type=int, default=0,
                        help="exit 1 unless at least this many requests "
                             "succeeded")

    p_campaign = sub.add_parser(
        "faultcampaign",
        help="seeded fault-injection campaign over the execution engines")
    p_campaign.add_argument("--faults", type=int, default=200,
                            help="number of faults to inject")
    p_campaign.add_argument("--seed", type=int, default=0)
    p_campaign.add_argument("--variants", default=None,
                            help="comma-separated variant list "
                                 "(default: all)")
    p_campaign.add_argument("--modes", default=None,
                            help="comma-separated engine modes "
                                 "(stepped,predecoded,fused)")
    p_campaign.add_argument("--no-crosscheck", action="store_true",
                            help="skip replaying faults on the reference "
                                 "engine")

    p_stats = sub.add_parser(
        "stats", help="benchmark trajectory: print/validate/diff the "
                      "committed baseline")
    p_stats.add_argument("--baseline", default=None,
                         help="baseline directory (default: "
                              "benchmarks/baseline)")
    p_stats.add_argument("--bench-dir", default=None,
                         help="fresh --bench-json output directory to "
                              "diff against the baseline")
    p_stats.add_argument("--check-baseline", action="store_true",
                         help="validate the committed baseline (schema + "
                              "paper pin benchmarks); exit 1 on problems")
    p_stats.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline from --bench-dir")
    p_stats.add_argument("--threshold", type=float, default=0.15,
                         help="normalized wall-clock regression threshold "
                              "(default 0.15)")

    p_profile = sub.add_parser(
        "profile", help="run a workload with metrics armed; print the "
                        "registry snapshot")
    p_profile.add_argument("--elen", type=int, default=64,
                           choices=(32, 64))
    p_profile.add_argument("--lmul", type=int, default=8, choices=(1, 8))
    p_profile.add_argument("--elenum", type=int, default=5)
    p_profile.add_argument("--states", type=int, default=1)
    p_profile.add_argument("--repeat", type=int, default=10,
                           help="session runs to profile")
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--workers", type=int, default=0,
                           help="profile a run_many batch across this "
                                "many workers instead of session runs")
    p_profile.add_argument("--count", type=int, default=60,
                           help="batch messages (with --workers)")
    p_profile.add_argument("--size", type=int, default=64,
                           help="bytes per batch message (with --workers)")
    p_profile.add_argument("--timeline", metavar="FILE", default=None,
                           help="export a Chrome trace_event JSON here")
    _add_engine_argument(p_profile)

    p_mix = sub.add_parser("mix", help="per-step-mapping cycle breakdown")
    p_mix.add_argument("--variant", choices=(
        "64-lmul1", "64-lmul41", "64-lmul8", "64-fused", "32-lmul8"))

    p_doc = sub.add_parser("isa-doc", help="render the ISA reference")
    p_doc.add_argument("--output", help="write Markdown here (else stdout)")

    p_asm = sub.add_parser("asm", help="assemble a source file")
    p_asm.add_argument("source")
    p_asm.add_argument("--base", type=lambda s: int(s, 0), default=0)
    p_asm.add_argument("--listing", action="store_true")

    p_dis = sub.add_parser("dis", help="disassemble hex words (file or -)")
    p_dis.add_argument("source")
    p_dis.add_argument("--base", type=lambda s: int(s, 0), default=0)

    return parser


_HANDLERS = {
    "tables": _cmd_tables,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "hash": _cmd_hash,
    "run": _cmd_run,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "faultcampaign": _cmd_faultcampaign,
    "stats": _cmd_stats,
    "profile": _cmd_profile,
    "mix": _cmd_mix,
    "isa-doc": _cmd_isa_doc,
    "asm": _cmd_asm,
    "dis": _cmd_dis,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except (OSError, ValueError, LookupError) as exc:
        # Bad input (unreadable file, malformed hex, invalid parameter):
        # one-line diagnostic, exit 2 — same contract as argparse errors.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except (RuntimeError, SimulationError) as exc:
        # Simulation or worker-pool failure on valid input.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
