"""repro — reproduction of "Maximizing the Potential of Custom RISC-V Vector
Extensions for Speeding up SHA-3 Hash Functions" (Li, Mentens, Picek,
DATE 2023).

Public API layers
-----------------

``repro.run`` / ``repro.Session``
    The unified execution entry point: run a generated Keccak program on
    the simulator with predecoded-program and processor reuse, returning
    a ``RunResult`` with all paper metrics as properties.
``repro.run_many`` / ``repro.parallel_exec``
    Process-parallel batch hashing: shard any number of messages across
    a pool of persistent worker processes (warm simulator session per
    worker), with deterministic ordering and crash/timeout retry.
``repro.keccak``
    NIST-checked SHA-3/Keccak reference (hashes, XOFs, step mappings,
    batched multi-state permutation).
``repro.isa`` / ``repro.assembler``
    The SIMD processor's instruction set (RV32IM + RVV subset + the ten
    custom vector extensions) and a two-pass assembler/disassembler.
``repro.sim``
    Functional + cycle-level simulator of the SIMD processor (Ibex-like
    scalar core + vector processing unit).
``repro.programs``
    The paper's Keccak assembly programs (Algorithms 2/3, the 32-bit
    variant, and the scalar baseline) plus state layouts (Figs. 5/6).
``repro.arch`` / ``repro.related`` / ``repro.eval``
    Design-space configuration, calibrated area model, related-work
    numbers, and the harness regenerating Tables 7/8 and the Section 4.2
    headline factors.
``repro.pqc``
    Kyber-style matrix/secret generation over parallel Keccak states.
"""

from . import (
    arch,
    assembler,
    eval,
    isa,
    keccak,
    parallel_exec,
    pqc,
    programs,
    related,
    resilience,
    sim,
)
from .assembler import assemble, disassemble
from .eval import generate_report, generate_table7, generate_table8
from .keccak import (
    SHA3_224,
    SHA3_256,
    SHA3_384,
    SHA3_512,
    SHAKE128,
    SHAKE256,
    KeccakState,
    keccak_f1600,
    new,
    sha3_224,
    sha3_256,
    sha3_384,
    sha3_512,
    shake128,
    shake256,
)
from .programs import (
    RunResult,
    Session,
    build_program,
    run,
    run_keccak_program,
    run_many,
)
from .sim import SIMDProcessor

__version__ = "1.0.0"

__all__ = [
    "keccak",
    "isa",
    "assembler",
    "sim",
    "programs",
    "arch",
    "related",
    "eval",
    "pqc",
    "KeccakState",
    "keccak_f1600",
    "SHA3_224",
    "SHA3_256",
    "SHA3_384",
    "SHA3_512",
    "SHAKE128",
    "SHAKE256",
    "sha3_224",
    "sha3_256",
    "sha3_384",
    "sha3_512",
    "shake128",
    "shake256",
    "assemble",
    "disassemble",
    "SIMDProcessor",
    "build_program",
    "run",
    "run_many",
    "parallel_exec",
    "resilience",
    "Session",
    "RunResult",
    "new",
    "run_keccak_program",
    "generate_table7",
    "generate_table8",
    "generate_report",
    "__version__",
]
