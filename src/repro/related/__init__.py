"""Published results of the designs the paper compares against."""

from .models import (
    ALL_RELATED,
    DASIP,
    IBEX_C_CODE,
    LEON3_ISE,
    MIPS_COPROCESSOR_ISE,
    MIPS_NATIVE_ISE,
    OASIP,
    RAWAT_VECTOR_EXTENSIONS,
    TABLE7_RELATED,
    TABLE8_RELATED,
    RelatedDesign,
)

__all__ = [
    "RelatedDesign",
    "LEON3_ISE",
    "MIPS_NATIVE_ISE",
    "MIPS_COPROCESSOR_ISE",
    "OASIP",
    "DASIP",
    "RAWAT_VECTOR_EXTENSIONS",
    "IBEX_C_CODE",
    "TABLE7_RELATED",
    "TABLE8_RELATED",
    "ALL_RELATED",
]
