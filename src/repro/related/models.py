"""Related-work comparison models (paper Section 2.3 and Tables 7/8).

The paper compares against five previously published designs using the
numbers those papers report — not re-implementations.  We carry the same
published figures, typed and cited, so the comparison tables and speedup
factors can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class RelatedDesign:
    """One published design's reported results."""

    name: str
    citation: str
    year: int
    architecture: str  # "32-bit" or "64-bit"
    cycles_per_round: Optional[float] = None
    cycles_per_byte: Optional[float] = None
    throughput_e3: Optional[float] = None  # (bits/cycle) x 10^3
    area_slices: Optional[int] = None
    supports_parallelism: bool = False
    notes: str = ""


LEON3_ISE = RelatedDesign(
    name="LEON3 ISE",
    citation="Wang et al., EDSSC 2015 [25]",
    year=2015,
    architecture="32-bit",
    cycles_per_byte=369.0,
    throughput_e3=21.68,
    area_slices=8648,
    notes="First SHA-3 instruction set extension on FPGA; tailored LEON3; "
          "~87% cycle-count reduction vs software.",
)

MIPS_NATIVE_ISE = RelatedDesign(
    name="MIPS Native ISE",
    citation="Elmohr et al., ICM 2016 [10]",
    year=2016,
    architecture="32-bit",
    cycles_per_byte=178.1,
    throughput_e3=44.92,
    area_slices=6595,
    notes="Four custom instructions, slight datapath modifications; "
          "25% performance improvement.",
)

MIPS_COPROCESSOR_ISE = RelatedDesign(
    name="MIPS Co-processor ISE",
    citation="Elmohr et al., ICM 2016 [10]",
    year=2016,
    architecture="32-bit",
    cycles_per_byte=137.9,
    throughput_e3=58.01,
    area_slices=7643,
    supports_parallelism=True,
    notes="Auxiliary registers + co-processor for parallel inputs; "
          "61.4% speedup.",
)

OASIP = RelatedDesign(
    name="OASIP",
    citation="Rao et al., IEICE 2018 [19]",
    year=2018,
    architecture="32-bit",
    cycles_per_byte=291.5,
    throughput_e3=27.44,
    area_slices=981,
    notes="RISC-V ASIP, seven instruction extensions on the existing "
          "datapath, no parallelism; 71% improvement.",
)

DASIP = RelatedDesign(
    name="DASIP",
    citation="Rao et al., IEICE 2018 [19]",
    year=2018,
    architecture="32-bit",
    cycles_per_byte=130.4,
    throughput_e3=61.35,
    area_slices=1522,
    supports_parallelism=True,
    notes="RISC-V ASIP with 21 extensions, 64-bit auxiliary register file, "
          "data- and instruction-level parallelism; 262% improvement.",
)

RAWAT_VECTOR_EXTENSIONS = RelatedDesign(
    name="Vector Extensions",
    citation="Rawat & Schaumont, IEEE TC 2017 [20]",
    year=2017,
    architecture="64-bit",
    cycles_per_round=66.0,
    throughput_e3=1010.1,
    area_slices=None,
    supports_parallelism=True,
    notes="Six vector extensions for 128-bit SIMD units (NEON/SSE/AVX "
          "style), evaluated in the GEM5 simulator only; 66 instructions "
          "and 66 cycles per Keccak round.",
)

IBEX_C_CODE = RelatedDesign(
    name="Ibex core (C-code)",
    citation="PQ-M4 Keccak C code on Ibex [13, 16]",
    year=2021,
    architecture="32-bit",
    cycles_per_round=2908.0,
    cycles_per_byte=355.69,
    throughput_e3=22.45,
    area_slices=432,
    notes="Software-only baseline: unmodified 32-bit Ibex core.",
)

#: Related designs in the 32-bit comparison (Table 8 order).
TABLE8_RELATED: Tuple[RelatedDesign, ...] = (
    LEON3_ISE,
    MIPS_NATIVE_ISE,
    MIPS_COPROCESSOR_ISE,
    OASIP,
    DASIP,
    IBEX_C_CODE,
)

#: Related designs in the 64-bit comparison (Table 7 order).
TABLE7_RELATED: Tuple[RelatedDesign, ...] = (RAWAT_VECTOR_EXTENSIONS,)

ALL_RELATED: Tuple[RelatedDesign, ...] = TABLE7_RELATED + TABLE8_RELATED
