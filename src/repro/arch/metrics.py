"""Performance metrics used in the paper's evaluation (Section 4.2).

Two execution-time measures and one throughput measure:

* ``cycles/round`` — latency of one Keccak round (five step mappings);
* ``cycles/byte`` — latency in clock cycles per message byte of one Keccak
  state over the entire 24-round permutation (state = 200 bytes);
* ``throughput`` — bits processed per cycle across all parallel states,
  reported as (bits/cycle) x 10^3 in the tables.

Latency is independent of the number of parallel states SN; throughput
scales linearly with SN.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..keccak.constants import STATE_BITS, STATE_BYTES


def cycles_per_byte(permutation_cycles: float) -> float:
    """Cycles per message byte of one state (200-byte state)."""
    if permutation_cycles <= 0:
        raise ValueError("permutation cycles must be positive")
    return permutation_cycles / STATE_BYTES


def throughput_bits_per_cycle(permutation_cycles: float,
                              num_states: int = 1) -> float:
    """Bits processed per cycle with ``num_states`` states in parallel."""
    if permutation_cycles <= 0:
        raise ValueError("permutation cycles must be positive")
    if num_states < 1:
        raise ValueError("need at least one state")
    return STATE_BITS * num_states / permutation_cycles


def throughput_e3(permutation_cycles: float, num_states: int = 1) -> float:
    """Throughput in the tables' display unit, (bits/cycle) x 10^3."""
    return 1000.0 * throughput_bits_per_cycle(permutation_cycles, num_states)


@dataclass(frozen=True)
class PerformancePoint:
    """One implementation's measured performance."""

    name: str
    cycles_per_round: float
    permutation_cycles: float
    num_states: int = 1

    @property
    def cycles_per_byte(self) -> float:
        return cycles_per_byte(self.permutation_cycles)

    @property
    def throughput_e3(self) -> float:
        return throughput_e3(self.permutation_cycles, self.num_states)

    def speedup_over(self, other: "PerformancePoint") -> float:
        """Throughput ratio of this point over ``other``."""
        return self.throughput_e3 / other.throughput_e3
