"""Absolute-time projections at a given clock frequency.

The paper implements the SIMD processor at 100 MHz on the Alveo U250 but
reports only cycle-based metrics (the references use unknown/various
clocks).  These helpers convert cycle metrics into absolute throughput
and latency at a chosen frequency, for deployment-style what-ifs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..keccak.constants import STATE_BITS

#: The paper's implementation clock on the Alveo U250.
PAPER_CLOCK_HZ = 100_000_000


@dataclass(frozen=True)
class AbsolutePerformance:
    """Cycle metrics projected to wall-clock at a given frequency."""

    label: str
    clock_hz: float
    permutation_cycles: int
    num_states: int

    @property
    def permutation_latency_s(self) -> float:
        """Seconds per (multi-state) permutation."""
        return self.permutation_cycles / self.clock_hz

    @property
    def permutations_per_second(self) -> float:
        """Single-state permutations completed per second."""
        return self.num_states * self.clock_hz / self.permutation_cycles

    @property
    def throughput_bits_per_second(self) -> float:
        """State bits processed per second across all parallel states."""
        return STATE_BITS * self.permutations_per_second

    @property
    def throughput_mbit_per_second(self) -> float:
        """Throughput in Mbit/s."""
        return self.throughput_bits_per_second / 1e6

    def hash_rate_per_second(self, rate_bytes: int = 136) -> float:
        """Message bytes absorbed per second for a given sponge rate
        (default: SHA3-256's 136-byte rate)."""
        return rate_bytes * self.permutations_per_second


def at_frequency(label: str, permutation_cycles: int, num_states: int = 1,
                 clock_hz: float = PAPER_CLOCK_HZ) -> AbsolutePerformance:
    """Project a measured configuration to absolute numbers."""
    if clock_hz <= 0:
        raise ValueError(f"clock must be positive, got {clock_hz}")
    if permutation_cycles <= 0:
        raise ValueError("permutation cycles must be positive")
    if num_states < 1:
        raise ValueError("need at least one state")
    return AbsolutePerformance(label, clock_hz, permutation_cycles,
                               num_states)
