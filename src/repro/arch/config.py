"""Architecture configuration: the paper's design-space knobs.

A configuration is (ELEN, EleNum, LMUL, SN): vector element width, elements
per vector register, register-group multiplier and the number of Keccak
states processed in parallel.  The paper evaluates ELEN ∈ {32, 64},
LMUL ∈ {1, 8} and EleNum ∈ {5, 15, 30} (SN ∈ {1, 3, 6}).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchConfig:
    """One point in the design space."""

    elen: int
    elenum: int
    lmul: int
    num_states: int

    def __post_init__(self) -> None:
        if self.elen not in (32, 64):
            raise ValueError(f"ELEN must be 32 or 64, got {self.elen}")
        if self.lmul not in (1, 2, 4, 8):
            raise ValueError(
                f"LMUL must be an integer in {{1, 2, 4, 8}}, got {self.lmul}"
            )
        if self.elenum < 5:
            raise ValueError(
                f"EleNum must be at least 5 (one plane), got {self.elenum}"
            )
        if self.num_states < 1:
            raise ValueError(
                f"need at least one Keccak state, got {self.num_states}"
            )
        if 5 * self.num_states > self.elenum:
            raise ValueError(
                f"{self.num_states} states need {5 * self.num_states} "
                f"elements but EleNum is {self.elenum} "
                "(paper: 5 x SN must not exceed EleNum)"
            )

    @property
    def vlen_bits(self) -> int:
        """Vector register width in bits."""
        return self.elen * self.elenum

    @property
    def max_states(self) -> int:
        """Maximum SN this EleNum supports."""
        return self.elenum // 5

    @property
    def label(self) -> str:
        """The implementation name used in the paper's result tables."""
        state_word = "state" if self.num_states == 1 else "states"
        return (
            f"{self.elen}-bit with LMUL={self.lmul} "
            f"(EleNum={self.elenum}, {self.num_states} {state_word})"
        )

    def __str__(self) -> str:
        return self.label


#: The six 64-bit configurations of Table 7.
TABLE7_CONFIGS = tuple(
    ArchConfig(64, elenum, lmul, elenum // 5)
    for lmul in (1, 8)
    for elenum in (5, 15, 30)
)

#: The three 32-bit configurations of Table 8.
TABLE8_CONFIGS = tuple(
    ArchConfig(32, elenum, 8, elenum // 5) for elenum in (5, 15, 30)
)
