"""Architecture configuration, area model and performance metrics."""

from .area import AREA_ANCHORS, IBEX_SLICES, area_ratio, slices, slices_per_element
from .frequency import PAPER_CLOCK_HZ, AbsolutePerformance, at_frequency
from .config import TABLE7_CONFIGS, TABLE8_CONFIGS, ArchConfig
from .metrics import (
    PerformancePoint,
    cycles_per_byte,
    throughput_bits_per_cycle,
    throughput_e3,
)

__all__ = [
    "ArchConfig",
    "TABLE7_CONFIGS",
    "TABLE8_CONFIGS",
    "slices",
    "slices_per_element",
    "area_ratio",
    "AREA_ANCHORS",
    "IBEX_SLICES",
    "PAPER_CLOCK_HZ",
    "AbsolutePerformance",
    "at_frequency",
    "PerformancePoint",
    "cycles_per_byte",
    "throughput_bits_per_cycle",
    "throughput_e3",
]
