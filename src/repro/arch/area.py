"""FPGA area (slice-count) model, calibrated on the paper's results.

The paper reports post-implementation Vivado slice counts on the Xilinx
Alveo U250 for each (ELEN, EleNum) point.  We cannot run Vivado, so the
area model interpolates the published anchor points piecewise-linearly in
EleNum and extrapolates beyond the last segment with its slope.  The
anchors themselves are therefore reproduced exactly, and intermediate
configurations get a physically sensible estimate (area is dominated by
the per-element execution lanes and register-file bits, which scale
linearly in EleNum; the paper's own numbers are close to linear).

Anchor points (paper Tables 7 and 8):

=======  ========  =======
ELEN     EleNum    Slices
=======  ========  =======
64       5         7 323
64       15        24 789
64       30        48 180
32       5         6 359
32       15        23 408
32       30        48 036
=======  ========  =======

The bare Ibex core (the software-only baseline) measures 432 slices.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Published slice counts: {elen: ((elenum, slices), ...)}.
AREA_ANCHORS: Dict[int, Tuple[Tuple[int, int], ...]] = {
    64: ((5, 7323), (15, 24789), (30, 48180)),
    32: ((5, 6359), (15, 23408), (30, 48036)),
}

#: Slices of the bare Ibex core running the C-code baseline.
IBEX_SLICES = 432

#: Fractional area cost of each vector register bank beyond the first.
#: Extra banks replicate the register-file read/write porting and bank
#: arbitration, not the execution lanes, so the increment is a fraction
#: of the datapath area (a multi-bank VRF costs ports, not ALUs).
BANK_AREA_FACTOR = 0.08

#: Area cost of each scalar issue slot beyond the first, as a fraction
#: of the bare Ibex core (a second decode/issue lane duplicates the
#: front end but shares memories and the vector interface).
ISSUE_AREA_FACTOR = 0.25


def slices(elen: int, elenum: int) -> float:
    """Estimated slice count of the SIMD processor for (ELEN, EleNum)."""
    if elen not in AREA_ANCHORS:
        raise ValueError(f"no area calibration for ELEN={elen}")
    if elenum < 1:
        raise ValueError(f"EleNum must be positive, got {elenum}")
    anchors = AREA_ANCHORS[elen]
    # Exact hit on an anchor.
    for anchor_elenum, anchor_slices in anchors:
        if elenum == anchor_elenum:
            return float(anchor_slices)
    # Piecewise-linear interpolation / extrapolation.
    (x0, y0), (x1, y1) = anchors[0], anchors[1]
    if elenum > anchors[1][0]:
        (x0, y0), (x1, y1) = anchors[1], anchors[2]
    slope = (y1 - y0) / (x1 - x0)
    return y0 + slope * (elenum - x0)


def explore_slices(elen: int, elenum: int, *,
                   register_banks: int = 1,
                   issue_width: int = 1) -> float:
    """Slice estimate for an explored (micro)architecture point.

    Extends :func:`slices` along the ``repro explore`` sweep axes: extra
    vector register banks scale the vector datapath by
    :data:`BANK_AREA_FACTOR` each, extra scalar issue slots add
    :data:`ISSUE_AREA_FACTOR` of an Ibex core each.  At the defaults
    (one bank, single issue) this is exactly :func:`slices`, so the
    paper's published anchor points survive unchanged in every sweep.
    """
    if register_banks < 1:
        raise ValueError(f"register_banks must be >= 1, got {register_banks}")
    if issue_width < 1:
        raise ValueError(f"issue_width must be >= 1, got {issue_width}")
    base = slices(elen, elenum)
    banked = base * (1.0 + BANK_AREA_FACTOR * (register_banks - 1))
    issue = IBEX_SLICES * ISSUE_AREA_FACTOR * (issue_width - 1)
    return banked + issue


def slices_per_element(elen: int) -> float:
    """Marginal slice cost of one additional vector element (last segment)."""
    anchors = AREA_ANCHORS[elen]
    (x0, y0), (x1, y1) = anchors[1], anchors[2]
    return (y1 - y0) / (x1 - x0)


def area_ratio(elen: int, elenum: int, reference_slices: float) -> float:
    """Area of a configuration relative to a reference design."""
    if reference_slices <= 0:
        raise ValueError("reference area must be positive")
    return slices(elen, elenum) / reference_slices
