"""Regeneration of the paper's result tables (Tables 7 and 8).

Each table interleaves three kinds of rows: literature rows (published
numbers the paper compares against), *paper* rows (what the paper reports
for its own configurations) and *measured* rows (what our simulator
reproduces for the same configurations), so paper-vs-measured is visible
line by line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..arch.config import TABLE7_CONFIGS, TABLE8_CONFIGS, ArchConfig
from ..related.models import TABLE7_RELATED, TABLE8_RELATED
from .measure import measure_config, measure_scalar_baseline


@dataclass(frozen=True)
class TableRow:
    """One line of a result table."""

    implementation: str
    source: str  # "literature" | "paper" | "measured"
    cycles_per_round: Optional[float] = None
    cycles_per_byte: Optional[float] = None
    throughput_e3: Optional[float] = None
    area_slices: Optional[float] = None


#: The paper's own Table 7 rows: label -> (c/round, c/byte, tput_e3, slices).
PAPER_TABLE7: Dict[str, Tuple[float, float, float, int]] = {
    "64-bit with LMUL=1 (EleNum=5, 1 state)": (103, 12.8, 624.02, 7323),
    "64-bit with LMUL=1 (EleNum=15, 3 states)": (103, 12.8, 1872.07, 24789),
    "64-bit with LMUL=1 (EleNum=30, 6 states)": (103, 12.8, 3744.15, 48180),
    "64-bit with LMUL=8 (EleNum=5, 1 state)": (75, 9.5, 845.67, 7323),
    "64-bit with LMUL=8 (EleNum=15, 3 states)": (75, 9.5, 2537.00, 24789),
    "64-bit with LMUL=8 (EleNum=30, 6 states)": (75, 9.5, 5073.00, 48180),
}

#: The paper's own Table 8 rows.
PAPER_TABLE8: Dict[str, Tuple[float, float, float, int]] = {
    "32-bit with LMUL=8 (EleNum=5, 1 state)": (147, 18.1, 441.98, 6359),
    "32-bit with LMUL=8 (EleNum=15, 3 states)": (147, 18.1, 1325.97, 23408),
    "32-bit with LMUL=8 (EleNum=30, 6 states)": (147, 18.1, 2651.93, 48036),
}


def _literature_rows(designs) -> List[TableRow]:
    return [
        TableRow(
            implementation=f"{d.name} [{d.citation}]",
            source="literature",
            cycles_per_round=d.cycles_per_round,
            cycles_per_byte=d.cycles_per_byte,
            throughput_e3=d.throughput_e3,
            area_slices=d.area_slices,
        )
        for d in designs
    ]


def _config_rows(config: ArchConfig,
                 paper: Dict[str, Tuple[float, float, float, int]]
                 ) -> List[TableRow]:
    rows: List[TableRow] = []
    paper_values = paper.get(config.label)
    if paper_values is not None:
        c_round, c_byte, tput, area = paper_values
        rows.append(TableRow(config.label, "paper", c_round, c_byte,
                             tput, area))
    m = measure_config(config)
    rows.append(TableRow(config.label, "measured", m.cycles_per_round,
                         m.cycles_per_byte, m.throughput_e3, m.area_slices))
    return rows


def generate_table7() -> List[TableRow]:
    """Rows of Table 7: 64-bit architectures vs the 64-bit reference."""
    rows = _literature_rows(TABLE7_RELATED)
    for config in TABLE7_CONFIGS:
        rows.extend(_config_rows(config, PAPER_TABLE7))
    return rows


def generate_table8() -> List[TableRow]:
    """Rows of Table 8: 32-bit architectures vs five 32-bit references."""
    rows = _literature_rows(TABLE8_RELATED)
    baseline = measure_scalar_baseline()
    rows.append(TableRow(baseline.label, "measured",
                         baseline.cycles_per_round,
                         baseline.cycles_per_byte,
                         baseline.throughput_e3,
                         baseline.area_slices))
    for config in TABLE8_CONFIGS:
        rows.extend(_config_rows(config, PAPER_TABLE8))
    return rows


def render_table(rows: List[TableRow], title: str) -> str:
    """Format rows the way the paper's tables print them."""

    def fmt(value: Optional[float], decimals: int = 1) -> str:
        if value is None:
            return "-"
        if float(value).is_integer() and decimals <= 1:
            return f"{value:.0f}"
        return f"{value:.{decimals}f}"

    header = (
        f"{'Implementation':52s} {'src':9s} {'cyc/rnd':>8s} "
        f"{'cyc/byte':>9s} {'tput e3':>10s} {'slices':>8s}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.implementation[:52]:52s} {row.source:9s} "
            f"{fmt(row.cycles_per_round):>8s} "
            f"{fmt(row.cycles_per_byte):>9s} "
            f"{fmt(row.throughput_e3, 2):>10s} "
            f"{fmt(row.area_slices, 0):>8s}"
        )
    return "\n".join(lines)
