"""Evaluation harness: regenerate every table, figure and headline factor."""

from .instruction_mix import InstructionMix, measure_instruction_mix
from .interleave_analysis import Scenario as InterleaveScenario, analyze as analyze_interleaving, render_analysis as render_interleave_analysis
from .figures import (
    pi_rearrangement,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    slide_modulo_five,
)
from .measure import (
    Measurement,
    VerificationError,
    measure_config,
    measure_scalar_baseline,
)
from .report import Comparison, generate_report, render_report
from .sweep import SweepPoint, pareto_frontier, render_sweep, sweep_design_space
from .tables import (
    PAPER_TABLE7,
    PAPER_TABLE8,
    TableRow,
    generate_table7,
    generate_table8,
    render_table,
)

__all__ = [
    "Measurement",
    "VerificationError",
    "measure_config",
    "measure_scalar_baseline",
    "TableRow",
    "generate_table7",
    "generate_table8",
    "render_table",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "Comparison",
    "generate_report",
    "render_report",
    "InstructionMix",
    "InterleaveScenario",
    "analyze_interleaving",
    "render_interleave_analysis",
    "measure_instruction_mix",
    "SweepPoint",
    "sweep_design_space",
    "pareto_frontier",
    "render_sweep",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "slide_modulo_five",
    "pi_rearrangement",
]
