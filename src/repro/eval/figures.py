"""Textual reproductions of the paper's structural figures (Figs. 5-8).

The evaluation figures of this paper are architecture diagrams rather than
data plots; these helpers render the data-layout and instruction-semantics
figures as text so examples/tests can regenerate and check them.
"""

from __future__ import annotations

from typing import List

from ..programs.layout import check_capacity


def render_fig5(elenum: int, num_states: int) -> str:
    """Fig. 5: memory/register allocation of the 64-bit architecture."""
    check_capacity(elenum, num_states)
    lines = [
        f"Fig. 5 — 64-bit architecture, EleNum={elenum}, "
        f"{num_states} Keccak state(s)",
    ]
    header = "reg | " + " ".join(
        f"{'e' + str(i):>5s}" for i in range(elenum)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for y in reversed(range(5)):
        cells = []
        for i in range(elenum):
            s, x = divmod(i, 5)
            if s < num_states and x < 5:
                cells.append(f"A{s}s{x}{y}")
            else:
                cells.append("  .  ")
        lines.append(f" v{y}  | " + " ".join(f"{c:>5s}" for c in cells))
    return "\n".join(lines)


def render_fig6(elenum: int, num_states: int) -> str:
    """Fig. 6: hi/lo split allocation of the 32-bit architecture."""
    check_capacity(elenum, num_states)
    lines = [
        f"Fig. 6 — 32-bit architecture, EleNum={elenum}, "
        f"{num_states} Keccak state(s)",
    ]
    for part, base in (("high halves (sh)", 16), ("low halves (sl)", 0)):
        lines.append(f"-- {part}, registers v{base}..v{base + 4} --")
        for y in reversed(range(5)):
            cells = []
            for i in range(elenum):
                s, x = divmod(i, 5)
                prefix = "sh" if base else "sl"
                cells.append(f"{prefix}{s}{x}{y}" if s < num_states
                             else " .  ")
            lines.append(f" v{base + y:<2d} | " +
                         " ".join(f"{c:>5s}" for c in cells))
    return "\n".join(lines)


def slide_modulo_five(elements: List[str], offset: int,
                      direction: str) -> List[str]:
    """Fig. 7: the vslidedownm/vslideupm element movement, as data.

    ``elements`` is the flat element list of one register (length must be a
    multiple of 5 plus optional tail); Keccak-state elements move modulo 5
    within their state, tail elements stay.
    """
    if direction not in ("down", "up"):
        raise ValueError(f"direction must be 'down' or 'up': {direction}")
    out = list(elements)
    num_states = len(elements) // 5
    for i in range(num_states):
        for j in range(5):
            if direction == "down":
                src = 5 * i + (j + offset) % 5
            else:
                src = 5 * i + (j - offset) % 5
            out[5 * i + j] = elements[src]
    return out


def render_fig7(num_states: int = 3, offset: int = 1) -> str:
    """Fig. 7: slide modulo-five semantics over SN states."""
    elements = [f"s{x}0" for _ in range(num_states) for x in range(5)]
    down = slide_modulo_five(elements, offset, "down")
    up = slide_modulo_five(elements, offset, "up")
    fmt = lambda row: " ".join(f"{c:>4s}" for c in row)  # noqa: E731
    return "\n".join([
        f"Fig. 7 — vector slide modulo five, SN={num_states}, N={offset}",
        "input:      " + fmt(elements),
        "slide down: " + fmt(down),
        "slide up:   " + fmt(up),
    ])


def pi_rearrangement(num_states: int = 1) -> List[List[str]]:
    """Fig. 8: where the pi step puts every lane (symbolically).

    Returns a 5x(5*SN) grid ``out[y][5s + x]`` of source lane names
    ``s<x><y>`` after the full pi scramble.
    """
    grid = [["" for _ in range(5 * num_states)] for _ in range(5)]
    for y in range(5):
        for s in range(num_states):
            for x in range(5):
                # F[x, y] = E[(x + 3y) mod 5, x]
                src_x = (x + 3 * y) % 5
                src_y = x
                grid[y][5 * s + x] = f"s{src_x}{src_y}"
    return grid


def render_fig8(num_states: int = 1) -> str:
    """Fig. 8: the pi operation's row->column re-arrangement."""
    grid = pi_rearrangement(num_states)
    lines = [f"Fig. 8 — pi operation result (SN={num_states}), "
             "entry = source lane s<x><y>"]
    for y in reversed(range(5)):
        lines.append(
            f" row {y}: " + " ".join(f"{c:>4s}" for c in grid[y])
        )
    return "\n".join(lines)
