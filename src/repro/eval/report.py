"""The headline comparison factors of Section 4.2, paper vs measured.

The paper states six headline numbers; each is regenerated here from the
simulator measurements and the published literature values:

* LMUL=8 improves throughput by **1.35x** over LMUL=1 (64-bit);
* the 64-bit architecture runs **almost twice** as fast as the 32-bit one;
* 32-bit (EleNum=30) vs C-code: **117.9x** faster, **111.2x** more area;
* 32-bit (EleNum=30) vs MIPS Co-processor ISE: **45.7x** faster, **6.3x**
  more area;
* 32-bit (EleNum=30) vs DASIP: **43.2x** faster, **31.5x** larger;
* 64-bit (EleNum=30, LMUL=8) vs Rawat vector extensions: **5.3x** faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..arch.config import ArchConfig
from ..related.models import (
    DASIP,
    IBEX_C_CODE,
    MIPS_COPROCESSOR_ISE,
    RAWAT_VECTOR_EXTENSIONS,
)
from .measure import measure_config, measure_scalar_baseline


@dataclass(frozen=True)
class Comparison:
    """One headline factor: paper's claim vs our measurement."""

    description: str
    paper_factor: float
    measured_factor: float

    @property
    def relative_error(self) -> float:
        """|measured - paper| / paper."""
        return abs(self.measured_factor - self.paper_factor) / self.paper_factor


def _cfg(elen: int, lmul: int, elenum: int) -> ArchConfig:
    return ArchConfig(elen, elenum, lmul, elenum // 5)


def generate_report(use_measured_baseline: bool = False) -> List[Comparison]:
    """Regenerate every Section 4.2 headline factor.

    With ``use_measured_baseline`` the C-code comparison uses our own
    simulated scalar baseline instead of the paper's published Ibex number
    (both are reported in EXPERIMENTS.md).
    """
    m64_l1 = measure_config(_cfg(64, 1, 30))
    m64_l8 = measure_config(_cfg(64, 8, 30))
    m32_l8 = measure_config(_cfg(32, 8, 30))

    comparisons = [
        Comparison(
            "LMUL=8 vs LMUL=1 throughput (64-bit)",
            paper_factor=1.35,
            measured_factor=m64_l8.throughput_e3 / m64_l1.throughput_e3,
        ),
        Comparison(
            "64-bit vs 32-bit throughput (LMUL=8)",
            paper_factor=5073.00 / 2651.93,
            measured_factor=m64_l8.throughput_e3 / m32_l8.throughput_e3,
        ),
    ]

    if use_measured_baseline:
        baseline = measure_scalar_baseline()
        c_code_tput = baseline.throughput_e3
        c_code_area = baseline.area_slices
    else:
        c_code_tput = IBEX_C_CODE.throughput_e3
        c_code_area = float(IBEX_C_CODE.area_slices)

    comparisons += [
        Comparison(
            "32-bit (EleNum=30) vs C-code throughput",
            paper_factor=117.9,
            measured_factor=m32_l8.throughput_e3 / c_code_tput,
        ),
        Comparison(
            "32-bit (EleNum=30) vs C-code area",
            paper_factor=111.2,
            measured_factor=m32_l8.area_slices / c_code_area,
        ),
        Comparison(
            "32-bit (EleNum=30) vs MIPS Co-processor ISE throughput",
            paper_factor=45.7,
            measured_factor=m32_l8.throughput_e3
            / MIPS_COPROCESSOR_ISE.throughput_e3,
        ),
        Comparison(
            "32-bit (EleNum=30) vs MIPS Co-processor ISE area",
            paper_factor=6.3,
            measured_factor=m32_l8.area_slices
            / MIPS_COPROCESSOR_ISE.area_slices,
        ),
        Comparison(
            "32-bit (EleNum=30) vs DASIP throughput",
            paper_factor=43.2,
            measured_factor=m32_l8.throughput_e3 / DASIP.throughput_e3,
        ),
        Comparison(
            "32-bit (EleNum=30) vs DASIP area",
            paper_factor=31.5,
            measured_factor=m32_l8.area_slices / DASIP.area_slices,
        ),
        Comparison(
            "64-bit (EleNum=30, LMUL=8) vs Rawat vector extensions",
            paper_factor=5.3,
            measured_factor=m64_l8.throughput_e3
            / RAWAT_VECTOR_EXTENSIONS.throughput_e3,
        ),
    ]
    return comparisons


def render_report(comparisons: List[Comparison]) -> str:
    """Human-readable paper-vs-measured factor table."""
    header = (
        f"{'Comparison':58s} {'paper':>8s} {'measured':>9s} {'err':>6s}"
    )
    lines = ["Section 4.2 headline factors", "=" * len(header), header,
             "-" * len(header)]
    for c in comparisons:
        lines.append(
            f"{c.description[:58]:58s} {c.paper_factor:8.2f} "
            f"{c.measured_factor:9.2f} {100 * c.relative_error:5.1f}%"
        )
    return "\n".join(lines)
