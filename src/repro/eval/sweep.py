"""Design-space sweep: throughput/area across the whole configuration grid.

The paper evaluates three EleNum points per architecture; this sweep fills
in the rest of the design space (every EleNum that holds an integral
number of states, both ELENs, both LMULs, plus the future-work fused
variant) and derives the throughput-per-slice efficiency frontier — the
data one would plot as a Pareto figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arch.area import slices
from ..arch.config import ArchConfig
from ..keccak.permutation import keccak_f1600
from ..programs import keccak64_fused
from ..programs.session import run
from .measure import VerificationError, _random_states, measure_config


@dataclass(frozen=True)
class SweepPoint:
    """One design point of the sweep."""

    label: str
    elen: int
    lmul: int
    elenum: int
    num_states: int
    cycles_per_round: float
    permutation_cycles: int
    throughput_e3: float
    area_slices: float
    fused: bool = False

    @property
    def throughput_per_kslice(self) -> float:
        """Efficiency: throughput x10^3 per 1000 slices."""
        return 1000.0 * self.throughput_e3 / self.area_slices


def _measure_fused(elenum: int, num_states: int) -> SweepPoint:
    program = keccak64_fused.build(elenum)
    states = _random_states(num_states)
    result = run(program, states, trace=True)
    if result.states != [keccak_f1600(s) for s in states]:
        raise VerificationError("fused program does not match the reference")
    state_word = "state" if num_states == 1 else "states"
    return SweepPoint(
        label=f"64-bit fused (EleNum={elenum}, {num_states} {state_word})",
        elen=64,
        lmul=8,
        elenum=elenum,
        num_states=num_states,
        cycles_per_round=result.cycles_per_round,
        permutation_cycles=result.permutation_cycles,
        throughput_e3=result.throughput_e3,
        area_slices=slices(64, elenum),
        fused=True,
    )


def sweep_design_space(elenums: Optional[List[int]] = None,
                       include_fused: bool = True) -> List[SweepPoint]:
    """Measure every configuration on the grid; returns all sweep points.

    ``elenums`` defaults to every multiple of 5 from 5 to 30 (each holding
    an integral number of Keccak states, fully occupied).
    """
    elenums = elenums or [5, 10, 15, 20, 25, 30]
    points: List[SweepPoint] = []
    for elenum in elenums:
        num_states = elenum // 5
        for elen, lmul in ((64, 1), (64, 8), (32, 8)):
            config = ArchConfig(elen, elenum, lmul, num_states)
            m = measure_config(config)
            points.append(SweepPoint(
                label=config.label,
                elen=elen,
                lmul=lmul,
                elenum=elenum,
                num_states=num_states,
                cycles_per_round=m.cycles_per_round,
                permutation_cycles=m.permutation_cycles,
                throughput_e3=m.throughput_e3,
                area_slices=m.area_slices,
            ))
        if include_fused:
            points.append(_measure_fused(elenum, num_states))
    return points


def pareto_frontier(points: List[SweepPoint]) -> List[SweepPoint]:
    """Points not dominated in (throughput up, area down)."""
    frontier = []
    for p in points:
        dominated = any(
            q.throughput_e3 >= p.throughput_e3
            and q.area_slices <= p.area_slices
            and (q.throughput_e3 > p.throughput_e3
                 or q.area_slices < p.area_slices)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.area_slices)


def render_sweep(points: List[SweepPoint]) -> str:
    """Human-readable sweep table, sorted by throughput."""
    header = (f"{'Configuration':48s} {'cyc/rnd':>8s} {'tput e3':>9s} "
              f"{'slices':>8s} {'tput/kslice':>12s}")
    lines = ["Design-space sweep", "=" * len(header), header,
             "-" * len(header)]
    for p in sorted(points, key=lambda p: p.throughput_e3):
        lines.append(
            f"{p.label[:48]:48s} {p.cycles_per_round:8.0f} "
            f"{p.throughput_e3:9.2f} {p.area_slices:8.0f} "
            f"{p.throughput_per_kslice:12.2f}"
        )
    return "\n".join(lines)
