"""Measurement driver: run a configuration on the simulator, extract metrics.

Every measurement also *verifies* functional correctness: the simulator's
permuted states must be bit-identical to the NIST-checked reference
permutation, otherwise the measurement raises — a performance number from
a wrong Keccak would be meaningless.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from ..arch.area import IBEX_SLICES, slices
from ..arch.config import ArchConfig
from ..arch.metrics import cycles_per_byte, throughput_e3
from ..keccak.permutation import keccak_f1600
from ..keccak.state import KeccakState
from ..programs import build_program, scalar_keccak
from ..programs.session import run
from ..sim.processor import SIMDProcessor

#: Seed for the deterministic test states used by all measurements.
_STATE_SEED = 0x5A5A


def _random_states(count: int, seed: int = _STATE_SEED):
    rng = random.Random(seed)
    return [
        KeccakState([rng.getrandbits(64) for _ in range(25)])
        for _ in range(count)
    ]


class VerificationError(AssertionError):
    """The simulated permutation disagreed with the reference."""


@dataclass(frozen=True)
class Measurement:
    """Measured performance of one architecture configuration."""

    label: str
    cycles_per_round: float
    permutation_cycles: int
    num_states: int
    area_slices: float

    @property
    def cycles_per_byte(self) -> float:
        return cycles_per_byte(self.permutation_cycles)

    @property
    def throughput_e3(self) -> float:
        return throughput_e3(self.permutation_cycles, self.num_states)


@lru_cache(maxsize=None)
def measure_config(config: ArchConfig, verify: bool = True) -> Measurement:
    """Run one vector configuration end to end and extract its metrics."""
    program = build_program(config.elen, config.lmul, config.elenum)
    states = _random_states(config.num_states)
    result = run(program, states, trace=True)
    if verify:
        expected = [keccak_f1600(s) for s in states]
        if result.states != expected:
            raise VerificationError(
                f"{config.label}: simulated permutation does not match the "
                "reference"
            )
    return Measurement(
        label=config.label,
        cycles_per_round=result.cycles_per_round,
        permutation_cycles=result.permutation_cycles,
        num_states=config.num_states,
        area_slices=slices(config.elen, config.elenum),
    )


@lru_cache(maxsize=None)
def measure_scalar_baseline(verify: bool = True) -> Measurement:
    """Run the scalar (Ibex C-code equivalent) baseline."""
    program = scalar_keccak.build()
    state = _random_states(1)[0]
    processor = SIMDProcessor(elen=32, elenum=5, trace=True)
    processor.load_program(program.assemble())
    scalar_keccak.setup_data(processor.memory, state)
    stats = processor.run()
    if verify:
        out = scalar_keccak.read_state(processor.memory)
        if out != keccak_f1600(state):
            raise VerificationError(
                "scalar baseline does not match the reference"
            )
    assembled = program.assemble()
    body_cycles = stats.cycles_in_pc_range(
        assembled.symbols["round_body"], assembled.symbols["round_end"]
    )
    return Measurement(
        label="Ibex core (C-code equivalent, measured)",
        cycles_per_round=body_cycles / 24.0,
        permutation_cycles=stats.cycles,
        num_states=1,
        area_slices=float(IBEX_SLICES),
    )
