"""Distributed design-space exploration: ``repro explore``.

The paper's headline result is a design-space trade-off — cycles vs
FPGA area across (EleNum, ELEN, LMUL).  :mod:`repro.eval.sweep` fills
that grid under the one calibrated timing model; this module opens the
*microarchitecture* axes on top: vector register bank count, scalar
issue width and chaining (the knobs
:class:`~repro.sim.timing.TimingModel` exposes), measures every
configuration on the simulator, joins the calibrated
:mod:`repro.arch.area` model, and reduces the cloud to an
area-vs-throughput Pareto front.

Points fan out over the worker pool: the pickle transport chunks
configurations like any batch workload, and the shared-memory transport
packs the JSON-encoded configurations into one arena, dispatches span
descriptors, and has workers write fixed-size packed result structs
into the arena's digest region in place — the same zero-copy machinery
``run_many`` uses for message hashing.

Every measurement is *verified* (the permuted states must match the
NIST-checked reference permutation — timing knobs must never change
digests), and the default-knob rows of every sweep reproduce the
paper's pins exactly: 2564 / 1892 / 3620 cycles per permutation and
103 / 75 / 147 cycles per round.  The committed artifact lives in the
trajectory pipeline (``benchmarks/baseline/EXPLORE_pareto.json``) and
is schema-checked by ``repro stats --check-baseline``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.area import explore_slices
from ..arch.metrics import throughput_e3 as _throughput_e3
from ..keccak.permutation import keccak_f1600
from ..parallel_exec import register_task_kind
from ..parallel_exec import shm as _shm
from ..parallel_exec.scheduler import (
    chunked,
    plan_spans,
    run_chunks_report,
    run_spans_report,
)
from ..programs.factory import build_program
from ..programs.session import default_session
from ..sim.timing import TimingModel
from .measure import VerificationError, _random_states

#: Artifact schema identifier; bump on any layout change.
EXPLORE_SCHEMA = "repro-explore-pareto/1"

#: The paper's published design points: per-permutation cycles and
#: cycles/round for each (ELEN, LMUL) variant — EleNum-independent
#: (register passes scale with VL *per register*), so every default-knob
#: row of a sweep must carry its variant's pin exactly.
PAPER_PINS: Dict[Tuple[int, int], Tuple[int, float]] = {
    (64, 1): (2564, 103.0),
    (64, 8): (1892, 75.0),
    (32, 8): (3620, 147.0),
}

#: The architecture variants the paper programs exist for.
VARIANTS: Tuple[Tuple[int, int], ...] = ((64, 1), (64, 8), (32, 8))

#: Fixed-size result record workers write into the arena digest region:
#: (permutation_cycles: int64, cycles_per_round: float64).
_RESULT_STRUCT = struct.Struct("<qd")

_EXPLORE_TASK_KIND = "repro.explore"
_EXPLORE_SHM_TASK_KIND = "repro.explore.shm"


@dataclass(frozen=True)
class ExplorePoint:
    """One swept configuration: architecture plus timing knobs."""

    elen: int
    lmul: int
    elenum: int
    num_states: int
    register_banks: int = 1
    issue_width: int = 1
    chaining: bool = False

    @property
    def label(self) -> str:
        bits = [f"{self.elen}-bit LMUL={self.lmul} EleNum={self.elenum}"]
        if self.register_banks != 1:
            bits.append(f"banks={self.register_banks}")
        if self.issue_width != 1:
            bits.append(f"issue={self.issue_width}")
        if self.chaining:
            bits.append("chained")
        return " ".join(bits)

    @property
    def is_default_timing(self) -> bool:
        """True when the timing knobs are the paper's calibrated model."""
        return self.timing_model().is_default

    def timing_model(self) -> TimingModel:
        return TimingModel(
            register_banks=self.register_banks,
            issue_width=self.issue_width,
            chaining=self.chaining,
        )


@dataclass(frozen=True)
class ExploreResult:
    """Measured + modelled outcome of one :class:`ExplorePoint`."""

    point: ExplorePoint
    permutation_cycles: int
    cycles_per_round: float
    timing_fingerprint: str

    @property
    def throughput_e3(self) -> float:
        return _throughput_e3(self.permutation_cycles,
                              self.point.num_states)

    @property
    def area_slices(self) -> float:
        return explore_slices(
            self.point.elen, self.point.elenum,
            register_banks=self.point.register_banks,
            issue_width=self.point.issue_width,
        )

    @property
    def throughput_per_kslice(self) -> float:
        return 1000.0 * self.throughput_e3 / self.area_slices


def explore_grid(elenums: Sequence[int] = (5, 15, 30),
                 variants: Sequence[Tuple[int, int]] = VARIANTS,
                 banks: Sequence[int] = (1, 2),
                 issue_widths: Sequence[int] = (1, 2),
                 chaining: Sequence[bool] = (False,)) -> List[ExplorePoint]:
    """The cartesian sweep grid, default timing knobs first.

    Every EleNum must hold an integral number of states (a multiple of
    5); each point runs fully occupied.  The default grid covers the
    paper's published design points (EleNum 5/15/30 across all three
    variants, one bank, single issue) plus the banked and dual-issue
    microarchitectures around them.
    """
    for elenum in elenums:
        if elenum < 5 or elenum % 5:
            raise ValueError(
                f"EleNum must be a positive multiple of 5, got {elenum}")
    for variant in variants:
        if tuple(variant) not in VARIANTS:
            raise ValueError(f"no program for variant {variant!r}")
    points = []
    for elenum in elenums:
        for elen, lmul in variants:
            for bank_count in banks:
                for issue in issue_widths:
                    for chain in chaining:
                        points.append(ExplorePoint(
                            elen=elen, lmul=lmul, elenum=elenum,
                            num_states=elenum // 5,
                            register_banks=bank_count,
                            issue_width=issue, chaining=chain,
                        ))
    points.sort(key=lambda p: not p.is_default_timing)
    return points


# -- measurement (runs in workers and serially) ---------------------------------


def measure_point(point: ExplorePoint) -> ExploreResult:
    """Run one configuration traced, verify digests, extract cycles.

    Runs on the shared default session for the point's timing model —
    the LRU-bounded session cache is what makes a sweep over many
    timing configurations safe (evicted sessions release their
    processors and predecode caches).
    """
    model = point.timing_model()
    program = build_program(point.elen, point.lmul, point.elenum)
    states = _random_states(point.num_states)
    result = default_session(model).run(program, states, trace=True)
    if result.states != [keccak_f1600(s) for s in states]:
        raise VerificationError(
            f"{point.label}: timing model {model.fingerprint()} changed "
            "the permutation result — timing knobs must never affect "
            "digests"
        )
    return ExploreResult(
        point=point,
        permutation_cycles=result.permutation_cycles,
        cycles_per_round=result.cycles_per_round,
        timing_fingerprint=model.fingerprint(),
    )


def _point_to_wire(point: ExplorePoint) -> bytes:
    return json.dumps(asdict(point), sort_keys=True).encode("ascii")


def _point_from_wire(blob: bytes) -> ExplorePoint:
    return ExplorePoint(**json.loads(blob.decode("ascii")))


def _measure_chunk(payload) -> List[Tuple[int, float, str]]:
    """Pickle-transport task body: measure a chunk of encoded points."""
    return [
        (r.permutation_cycles, r.cycles_per_round, r.timing_fingerprint)
        for r in (measure_point(_point_from_wire(blob))
                  for blob in payload)
    ]


def _measure_span_shm(payload) -> Tuple[int, int]:
    """Shm-transport task body: measure one span of packed points.

    The parent packed each JSON-encoded configuration as one arena
    message; results go back through the digest region as fixed-size
    :data:`_RESULT_STRUCT` records — no result bytes cross the queue.
    """
    segment_name, start, stop = payload
    arena = _shm.attach_arena(segment_name)
    records = []
    for blob in arena.read_messages(start, stop):
        result = measure_point(_point_from_wire(blob))
        records.append(_RESULT_STRUCT.pack(result.permutation_cycles,
                                           result.cycles_per_round))
    arena.write_digests(start, records)
    return (start, stop)


register_task_kind(_EXPLORE_TASK_KIND, _measure_chunk)
register_task_kind(_EXPLORE_SHM_TASK_KIND, _measure_span_shm)


def explore(points: Sequence[ExplorePoint], *,
            workers: int = 1,
            transport: str = "auto") -> List[ExploreResult]:
    """Measure every point, fanning out over the worker pool.

    ``workers <= 1`` measures serially in-process.  Parallel runs use
    the shared-memory transport by default (``transport="auto"`` or
    ``"shm"``: configurations packed into one arena, workers write
    packed result structs in place) or the pickle transport
    (``"pickle"``: chunked descriptors).  Results always come back in
    input order, bit-identical across transports and worker counts —
    cycle counts are simulated, not measured wall-clock.
    """
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(f"unknown transport: {transport!r}")
    points = list(points)
    if not points:
        return []
    if workers <= 1:
        return [measure_point(p) for p in points]
    if transport == "pickle":
        raw = _explore_pickle(points, workers)
    else:
        raw = _explore_shm(points, workers)
    return [
        ExploreResult(point=point, permutation_cycles=cycles,
                      cycles_per_round=cpr,
                      timing_fingerprint=point.timing_model().fingerprint())
        for point, (cycles, cpr) in zip(points, raw)
    ]


def _explore_pickle(points: List[ExplorePoint],
                    workers: int) -> List[Tuple[int, float]]:
    blobs = [_point_to_wire(p) for p in points]
    chunk_size = max(1, -(-len(blobs) // (workers * 4)))
    chunks = chunked(blobs, chunk_size)
    report = run_chunks_report(_EXPLORE_TASK_KIND,
                               [tuple(c) for c in chunks],
                               workers=workers)
    out: List[Tuple[int, float]] = []
    for chunk, values in zip(chunks, report.chunk_results):
        if values is None:
            raise RuntimeError(
                f"explore chunk of {len(chunk)} point(s) was quarantined")
        out.extend((cycles, cpr) for cycles, cpr, _ in values)
    return out


def _explore_shm(points: List[ExplorePoint],
                 workers: int) -> List[Tuple[int, float]]:
    blobs = [_point_to_wire(p) for p in points]
    sizes = [len(blob) for blob in blobs]
    out_size = _RESULT_STRUCT.size
    spans = plan_spans(sizes, workers)
    pool = _shm.arena_pool()
    arena = pool.acquire(_shm.required_size(sizes, out_size))
    try:
        arena.pack(blobs, out_size)
        segment = arena.name

        def payload(start: int, stop: int) -> Tuple:
            return (segment, start, stop)

        def collect(start: int, stop: int, _ack) -> List[bytes]:
            return arena.read_digests(start, stop)

        report = run_spans_report(
            _EXPLORE_SHM_TASK_KIND, len(blobs), workers=workers,
            payload=payload, collect=collect, spans=spans,
            transport="shm")
    finally:
        pool.release(arena)
    out: List[Tuple[int, float]] = []
    for index, record in enumerate(report.results):
        if record is None:
            raise RuntimeError(
                f"explore point {points[index].label!r} was quarantined")
        cycles, cpr = _RESULT_STRUCT.unpack(record)
        out.append((cycles, cpr))
    return out


# -- Pareto reduction and the committed artifact --------------------------------


def pareto_frontier(results: Sequence[ExploreResult]
                    ) -> List[ExploreResult]:
    """Results not dominated in (throughput up, area down)."""
    frontier = []
    for p in results:
        dominated = any(
            q.throughput_e3 >= p.throughput_e3
            and q.area_slices <= p.area_slices
            and (q.throughput_e3 > p.throughput_e3
                 or q.area_slices < p.area_slices)
            for q in results
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.area_slices)


def build_artifact(results: Sequence[ExploreResult]) -> dict:
    """The committed Pareto-front artifact (deterministic JSON value).

    Contains every swept point (``points``), the non-dominated subset
    flagged ``on_frontier``, the sweep axes, and the paper pins the
    default-timing rows must reproduce.  No timestamps: regenerating
    the artifact from the same grid yields a byte-identical file.
    """
    results = list(results)
    if not results:
        raise ValueError("cannot build an artifact from zero results")
    on_frontier = {id(r) for r in pareto_frontier(results)}
    rows = []
    for r in results:
        row = dict(asdict(r.point))
        row.update(
            label=r.point.label,
            default_timing=r.point.is_default_timing,
            timing_fingerprint=r.timing_fingerprint,
            permutation_cycles=r.permutation_cycles,
            cycles_per_round=r.cycles_per_round,
            throughput_e3=round(r.throughput_e3, 6),
            area_slices=round(r.area_slices, 3),
            throughput_per_kslice=round(r.throughput_per_kslice, 6),
            on_frontier=id(r) in on_frontier,
        )
        rows.append(row)
    axes = {
        "elenum": sorted({r.point.elenum for r in results}),
        "variant": sorted({f"{r.point.elen}x{r.point.lmul}"
                           for r in results}),
        "register_banks": sorted({r.point.register_banks
                                  for r in results}),
        "issue_width": sorted({r.point.issue_width for r in results}),
        "chaining": sorted({r.point.chaining for r in results}),
    }
    return {
        "schema": EXPLORE_SCHEMA,
        "axes": axes,
        "pins": {f"{elen}x{lmul}": {"permutation_cycles": cycles,
                                    "cycles_per_round": cpr}
                 for (elen, lmul), (cycles, cpr)
                 in sorted(PAPER_PINS.items())},
        "points": rows,
        "frontier": [row["label"] for row in rows if row["on_frontier"]],
    }


_ROW_REQUIRED = {
    "label": str, "elen": int, "lmul": int, "elenum": int,
    "num_states": int, "register_banks": int, "issue_width": int,
    "chaining": bool, "default_timing": bool, "timing_fingerprint": str,
    "permutation_cycles": int, "cycles_per_round": (int, float),
    "throughput_e3": (int, float), "area_slices": (int, float),
    "throughput_per_kslice": (int, float), "on_frontier": bool,
}


def validate_artifact(doc: object, path: str = "<artifact>") -> dict:
    """Schema-check a parsed artifact; raises ``ValueError`` on problems."""
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: artifact must be a JSON object")
    if doc.get("schema") != EXPLORE_SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} != {EXPLORE_SCHEMA!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        raise ValueError(f"{path}: points must be a non-empty list")
    for index, row in enumerate(points):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: points[{index}] is not an object")
        for key, kind in _ROW_REQUIRED.items():
            value = row.get(key)
            if isinstance(value, bool) and kind in (int, (int, float)):
                raise ValueError(
                    f"{path}: points[{index}].{key} must be numeric")
            if not isinstance(value, kind):
                raise ValueError(
                    f"{path}: points[{index}].{key} missing or mistyped")
    frontier = doc.get("frontier")
    if not isinstance(frontier, list) or not frontier:
        raise ValueError(f"{path}: frontier must be a non-empty list")
    labels = {row["label"] for row in points}
    for label in frontier:
        if label not in labels:
            raise ValueError(
                f"{path}: frontier entry {label!r} is not a swept point")
    if not isinstance(doc.get("axes"), dict):
        raise ValueError(f"{path}: missing axes object")
    return doc


def check_pins(doc: dict, path: str = "<artifact>") -> List[str]:
    """Problems with the artifact's default-timing rows vs. the pins.

    Every default-timing row must carry its variant's published cycle
    counts exactly (they are EleNum-independent), and at least one
    default-timing row must exist per published variant.
    """
    problems: List[str] = []
    seen: Dict[Tuple[int, int], int] = {}
    for row in doc.get("points", ()):
        if not row.get("default_timing"):
            continue
        variant = (row["elen"], row["lmul"])
        pin = PAPER_PINS.get(variant)
        if pin is None:
            continue
        seen[variant] = seen.get(variant, 0) + 1
        cycles, cpr = pin
        if row["permutation_cycles"] != cycles:
            problems.append(
                f"{path}: {row['label']}: permutation_cycles "
                f"{row['permutation_cycles']} != paper pin {cycles}")
        if row["cycles_per_round"] != cpr:
            problems.append(
                f"{path}: {row['label']}: cycles_per_round "
                f"{row['cycles_per_round']} != paper pin {cpr}")
    for variant in PAPER_PINS:
        if variant not in seen and _variant_swept(doc, variant):
            problems.append(
                f"{path}: no default-timing row for variant "
                f"{variant[0]}x{variant[1]}")
    return problems


def _variant_swept(doc: dict, variant: Tuple[int, int]) -> bool:
    return any((row.get("elen"), row.get("lmul")) == variant
               for row in doc.get("points", ()))


def validate_artifact_file(path: str, *,
                           require_pins: bool = True) -> dict:
    """Load, schema-check and (optionally) pin-check an artifact file."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate_artifact(doc, path)
    if require_pins:
        problems = check_pins(doc, path)
        if problems:
            raise ValueError("; ".join(problems))
    return doc


def write_artifact(doc: dict, path: str) -> str:
    """Write an artifact deterministically (sorted keys, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def default_artifact_path() -> str:
    """The committed artifact: ``benchmarks/baseline/EXPLORE_pareto.json``.

    Lives next to the BENCH_* trajectory records (same resolution rules
    as :func:`repro.observability.trajectory.default_baseline_dir`); the
    ``BENCH_`` loader ignores it by prefix, and ``repro stats
    --check-baseline`` schema-checks it when present.
    """
    import os

    from ..observability.trajectory import default_baseline_dir

    return os.path.join(default_baseline_dir(), "EXPLORE_pareto.json")


def render_explore(results: Sequence[ExploreResult],
                   top: Optional[int] = None) -> str:
    """Human-readable sweep table: frontier first, then dominated points."""
    frontier = pareto_frontier(results)
    on_frontier = {id(r) for r in frontier}
    header = (f"{'Configuration':52s} {'cyc/perm':>9s} {'tput e3':>9s} "
              f"{'slices':>9s} {'tput/kslice':>12s}  front")
    lines = ["Design-space exploration", "=" * len(header), header,
             "-" * len(header)]
    ordered = sorted(results, key=lambda r: (id(r) not in on_frontier,
                                             r.area_slices))
    if top is not None:
        ordered = ordered[:top]
    for r in ordered:
        marker = "  *" if id(r) in on_frontier else ""
        lines.append(
            f"{r.point.label[:52]:52s} {r.permutation_cycles:9d} "
            f"{r.throughput_e3:9.2f} {r.area_slices:9.0f} "
            f"{r.throughput_per_kslice:12.2f}{marker}"
        )
    return "\n".join(lines)
