"""Per-step-mapping cycle breakdown of a Keccak program.

Attributes every retired instruction of a traced run to one of the five
step mappings (theta, rho, pi, chi, iota) or to overhead (configuration,
loop control, state load/store), using the program's source comments as
ground truth for section boundaries.  This reproduces the reasoning of the
paper's Section 4 discussion — *where* the LMUL=8 and fused variants win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..keccak.state import KeccakState
from ..programs.base import KeccakProgram
from ..programs.session import run

#: Section markers recognized in the generated program sources.
_SECTION_KEYWORDS = (
    ("theta", "theta"),
    ("rho", "rho"),
    ("pi", "pi"),
    ("chi", "chi"),
    ("iota", "iota"),
)


@dataclass
class InstructionMix:
    """Cycle totals per step mapping over a full run."""

    program_name: str
    total_cycles: int
    section_cycles: Dict[str, int] = field(default_factory=dict)

    def fraction(self, section: str) -> float:
        """Fraction of total cycles spent in ``section``."""
        return self.section_cycles.get(section, 0) / self.total_cycles

    def render(self) -> str:
        """Human-readable breakdown table."""
        lines = [
            f"Instruction mix — {self.program_name} "
            f"({self.total_cycles} cycles)",
        ]
        for section, cycles in sorted(self.section_cycles.items(),
                                      key=lambda kv: -kv[1]):
            share = 100.0 * cycles / self.total_cycles
            bar = "#" * int(share / 2)
            lines.append(f"  {section:10s} {cycles:8d} cc  {share:5.1f}%  {bar}")
        return "\n".join(lines)


def _sections_from_source(program: KeccakProgram) -> Dict[int, str]:
    """Walk the source line by line, tracking '# <step> step' markers."""
    assembled = program.assemble()
    body_start = assembled.symbols.get("round_body", 0)
    body_end = assembled.symbols.get("round_end", 1 << 62)

    # Build a mapping from source line number to section.
    line_section: Dict[int, str] = {}
    current = "setup"
    for number, raw in enumerate(program.source.splitlines(), start=1):
        lowered = raw.lower()
        for keyword, name in _SECTION_KEYWORDS:
            if f"{keyword} step" in lowered or \
                    f"fused {keyword}" in lowered or \
                    f"# {keyword}:" in lowered:
                current = name
                break
        line_section[number] = current

    sections: Dict[int, str] = {}
    for inst in assembled.instructions:
        if inst.address < body_start:
            sections[inst.address] = "setup"
        elif inst.address >= body_end:
            sections[inst.address] = "loop"
        else:
            sections[inst.address] = line_section.get(inst.source_line,
                                                      "other")
    return sections


def measure_instruction_mix(program: KeccakProgram,
                            states: Sequence[KeccakState]) -> InstructionMix:
    """Run ``program`` traced and attribute cycles to step mappings."""
    result = run(program, states, trace=True)
    sections = _sections_from_source(program)
    totals: Dict[str, int] = {}
    assert result.stats.records is not None
    for record in result.stats.records:
        section = sections.get(record.pc, "other")
        totals[section] = totals.get(section, 0) + record.cycles
    return InstructionMix(
        program_name=program.name,
        total_cycles=result.stats.cycles,
        section_cycles=totals,
    )
