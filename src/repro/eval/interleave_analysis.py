"""The bit-interleaving trade-off, modeled and *measured* (§3.2).

The paper chooses the hi/lo split over bit interleaving.  Software Keccak
folklore says interleaving is the right 32-bit representation because a
64-bit rotation splits into two independent 32-bit rotations.  Both
representations are implemented as scalar RV32IM programs in this
repository (:mod:`repro.programs.scalar_keccak` and
:mod:`repro.programs.scalar_keccak_interleaved`), so the trade-off is a
measurement, not an argument — and the measurement is more nuanced than
the folklore:

* On **RV32IM there is no rotate instruction**, so a 32-bit rotation by a
  table-driven amount costs sub+sll+srl+or — and two of those cost about
  the same as one double-word variable rotation in the hi/lo form.  In
  looped, table-driven code the interleaved round is within ~2% of the
  hi/lo round (slightly *slower*: it needs three table bytes per lane
  instead of one), and interleaving additionally pays the in-assembly
  conversion passes.  The hi/lo split wins outright — consistent with the
  paper's choice.
* On ISAs **with a hardware rotate** (ARM's ROR, or cores with Zbb's
  ``rori``), the interleaved 32-bit rotations collapse to ~1 cycle each
  while the hi/lo double-word rotation still needs the 4-6 op sequence —
  this is the regime where software interleaving genuinely wins, and the
  scenario model below quantifies it.

The paper's vector design sidesteps the whole trade-off: the
``v32lrho``/``v32hrho`` pair hardware gives free 64-bit rotations on
hi/lo data, so there is no conversion and no rotation penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rotations per Keccak-f[1600] permutation: 24 rounds x (24 nonzero rho
#: lanes + 5 theta parity rotations).
ROTATIONS_PER_PERMUTATION = 24 * (24 + 5)


@dataclass(frozen=True)
class Scenario:
    """Per-rotation costs of the two representations on one ISA."""

    name: str
    hilo_rotation_cycles: float
    interleaved_rotation_cycles: float
    #: In-assembly interleave + deinterleave of one state, both directions
    #: (measured: 1809 cycles each on the simulated Ibex).
    conversion_cycles_per_state: float = 2 * 1809.0

    @property
    def rotation_savings_per_permutation(self) -> float:
        return ROTATIONS_PER_PERMUTATION * (
            self.hilo_rotation_cycles - self.interleaved_rotation_cycles
        )

    @property
    def break_even_permutations(self) -> float:
        """Permutations per conversion for interleaving to pay off
        (infinity when interleaving saves nothing per rotation)."""
        savings = self.rotation_savings_per_permutation
        if savings <= 0:
            return float("inf")
        return self.conversion_cycles_per_state / savings

    def interleaving_wins(self, permutations_per_conversion: float) -> bool:
        return permutations_per_conversion > self.break_even_permutations


#: RV32IM, looped table-driven code (our measured baseline pair): the
#: interleaved rotation needs two shift-pair rotations plus two extra
#: table-byte loads — no saving over the hi/lo double-word rotation.
RV32_LOOPED = Scenario(
    name="RV32IM, looped (measured)",
    hilo_rotation_cycles=13.0,
    interleaved_rotation_cycles=13.5,
)

#: A core with single-cycle rotates (ARM ROR / RISC-V Zbb rori): the
#: interleaved rotation costs ~2 cycles (two rori), the hi/lo double-word
#: variable rotation still ~10.
HARDWARE_ROTATE = Scenario(
    name="ISA with 1-cycle rotate (ARM/Zbb)",
    hilo_rotation_cycles=10.0,
    interleaved_rotation_cycles=2.0,
)


def analyze(scenario: Scenario = RV32_LOOPED) -> Scenario:
    """Return the scenario (kept for API symmetry with other analyses)."""
    return scenario


def render_analysis() -> str:
    """Human-readable summary of both regimes."""
    lines = [
        "Bit interleaving vs hi/lo split (scalar 32-bit cores, §3.2)",
    ]
    for scenario in (RV32_LOOPED, HARDWARE_ROTATE):
        be = scenario.break_even_permutations
        be_text = "never" if be == float("inf") else f"{be:.2f} permutations"
        lines += [
            f"  {scenario.name}:",
            f"    rotation cycles  hi/lo {scenario.hilo_rotation_cycles:.1f}"
            f"  vs interleaved {scenario.interleaved_rotation_cycles:.1f}",
            f"    conversion cost {scenario.conversion_cycles_per_state:.0f}"
            " cycles per state (measured, both directions)",
            f"    break-even: {be_text} per conversion",
        ]
    lines += [
        "",
        "  -> On RISC-V (no rotate instruction) interleaving does not pay:",
        "     the hi/lo split wins even before counting conversion — the",
        "     paper's choice holds for software too on this ISA.  The",
        "     classic software preference for interleaving comes from ISAs",
        "     with single-cycle rotates.  The paper's vector design gets",
        "     free 64-bit rotations from the v32lrho/v32hrho pair hardware",
        "     and avoids the trade-off entirely.",
    ]
    return "\n".join(lines)
