"""Kyber-style PQC workloads driving multi-state Keccak (paper future work)."""

from .kyber_gen import (
    KYBER_K,
    KYBER_N,
    KYBER_Q,
    ParallelShake128,
    WorkloadEstimate,
    cbd,
    estimate_workload_cycles,
    generate_matrix_parallel,
    generate_matrix_sequential,
    parse_xof,
    sample_secret,
)

__all__ = [
    "KYBER_N",
    "KYBER_Q",
    "KYBER_K",
    "parse_xof",
    "generate_matrix_sequential",
    "generate_matrix_parallel",
    "ParallelShake128",
    "cbd",
    "sample_secret",
    "WorkloadEstimate",
    "estimate_workload_cycles",
]
