"""Pool-hardening policy objects: backoff, breakers, quarantine, health.

The scheduler's original recovery story was binary — retry a crashed
chunk up to ``max_retries`` times, abort on anything else.  This module
holds the pieces that turn it into a production-shaped failure model:

* :class:`RetryPolicy` — *how* to retry: exponential backoff with
  jitter between re-dispatches, whether deterministic task errors are
  retried at all, and when to stop trying.
* circuit breaking (:class:`WorkerLedger`) — a worker that fails ``K``
  chunks *consecutively* is retired and respawned even if its process is
  still alive; one success resets the count.
* :class:`QuarantineLog` — a chunk that fails on ``N`` distinct workers
  is *poisoned*: the input, not the worker, is the problem.  Quarantined
  chunks are reported (with every failure reason) instead of being
  retried forever or taking the whole batch down.
* :class:`PoolStats` — counters for everything the scheduler did, so a
  run can be audited after the fact (`repro batch --quarantine-report`).

All of this is plain bookkeeping: the scheduler drives it, the policy
never touches processes itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: Work-unit key in quarantine records: a chunk index (the chunk
#: scheduler) or a ``(start, stop)`` item span (the work-stealing span
#: scheduler).  Both are hashable and sortable within one run.
WorkKey = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/recovery policy for one chunked run.

    The default policy reproduces the seed scheduler's behaviour (no
    backoff, task errors fail fast, failures raise).  ``hardened()``
    returns the recommended production shape.
    """

    #: Extra attempts per chunk after the first (crash/timeout, and task
    #: errors when ``retry_task_errors`` is set).
    max_retries: int = 2
    #: First re-dispatch delay in seconds; 0 disables backoff entirely.
    backoff_base: float = 0.0
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Cap on the un-jittered delay.
    backoff_max: float = 2.0
    #: Up to this *fraction* of the delay is added uniformly at random,
    #: decorrelating retry storms across chunks.
    jitter: float = 0.5
    #: Retry task exceptions on another worker instead of failing fast.
    #: Off by default: deterministic tasks fail deterministically.
    retry_task_errors: bool = False
    #: Circuit breaker: retire a worker after this many *consecutive*
    #: failures attributed to it.
    breaker_threshold: int = 3
    #: Quarantine a chunk once this many *distinct* workers failed on it.
    quarantine_threshold: int = 3
    #: Report quarantined/exhausted chunks instead of raising; the run
    #: completes and the report names every poisoned chunk.
    quarantine: bool = False
    #: Ping idle workers this often (seconds); None disables heartbeats.
    heartbeat_interval: Optional[float] = None
    #: An idle worker that has not answered a ping for this long is
    #: declared wedged and replaced.
    heartbeat_timeout: float = 10.0
    #: Seed for the jitter RNG (None draws from the global RNG).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1: {self.breaker_threshold}")
        if self.quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1: "
                f"{self.quarantine_threshold}")
        if self.heartbeat_interval is not None \
                and self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive: "
                f"{self.heartbeat_interval}")

    @classmethod
    def hardened(cls, **overrides) -> "RetryPolicy":
        """The recommended production policy: backoff, retries with
        quarantine, and idle-worker heartbeats."""
        defaults = dict(max_retries=3, backoff_base=0.05,
                        retry_task_errors=True, quarantine=True,
                        heartbeat_interval=0.5, heartbeat_timeout=10.0)
        defaults.update(overrides)
        return cls(**defaults)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before re-dispatching attempt ``attempt`` (2, 3, ...)."""
        if self.backoff_base <= 0:
            return 0.0
        exponent = max(0, attempt - 2)
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** exponent)
        return base * (1.0 + self.jitter * rng.random())

    def make_rng(self) -> random.Random:
        return random.Random(self.seed)


@dataclass(frozen=True)
class QuarantinedChunk:
    """One poisoned work unit: where it failed and why, per attempt.

    ``chunk_index`` is the unit's key — an ``int`` chunk index for the
    chunk scheduler, a ``(start, stop)`` span for the span scheduler.
    """

    chunk_index: WorkKey
    #: Worker ids that failed on this chunk, in failure order.
    workers: Tuple[int, ...]
    #: One reason string per recorded failure, aligned with ``workers``.
    reasons: Tuple[str, ...]

    def __str__(self) -> str:
        return (f"chunk {self.chunk_index}: failed on "
                f"{len(set(self.workers))} worker(s) "
                f"[{', '.join(map(str, self.workers))}] — "
                f"{'; '.join(self.reasons)}")


class QuarantineLog:
    """Tracks per-chunk failures across distinct workers.

    :meth:`record` returns True exactly when the chunk crosses the
    distinct-worker threshold (the moment it becomes quarantined);
    :meth:`force` quarantines regardless (retries exhausted).
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._failures: Dict[WorkKey, List[Tuple[int, str]]] = {}
        self._quarantined: List[WorkKey] = []

    def record(self, chunk_index: WorkKey, worker_id: int,
               reason: str) -> bool:
        failures = self._failures.setdefault(chunk_index, [])
        failures.append((worker_id, reason))
        distinct = len({w for w, _ in failures})
        if distinct >= self.threshold \
                and chunk_index not in self._quarantined:
            self._quarantined.append(chunk_index)
            return True
        return False

    def force(self, chunk_index: WorkKey, worker_id: Optional[int] = None,
              reason: Optional[str] = None) -> None:
        """Quarantine unconditionally (e.g. retries exhausted); pass a
        worker/reason pair to log one more failure while doing so."""
        failures = self._failures.setdefault(chunk_index, [])
        if reason is not None:
            failures.append((worker_id if worker_id is not None else -1,
                             reason))
        if chunk_index not in self._quarantined:
            self._quarantined.append(chunk_index)

    @property
    def quarantined_indices(self) -> List[WorkKey]:
        return sorted(self._quarantined)

    def quarantined(self) -> List[QuarantinedChunk]:
        out = []
        for index in self.quarantined_indices:
            failures = self._failures[index]
            out.append(QuarantinedChunk(
                chunk_index=index,
                workers=tuple(w for w, _ in failures),
                reasons=tuple(r for _, r in failures),
            ))
        return out

    def summary(self) -> str:
        chunks = self.quarantined()
        if not chunks:
            return "quarantine: no chunks quarantined"
        lines = [f"quarantine: {len(chunks)} chunk(s) quarantined"]
        lines.extend(f"  {chunk}" for chunk in chunks)
        return "\n".join(lines)


class WorkerLedger:
    """Circuit breaker: consecutive-failure counts per live worker."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._consecutive: Dict[int, int] = {}

    def record_success(self, worker_id: int) -> None:
        self._consecutive[worker_id] = 0

    def record_failure(self, worker_id: int) -> bool:
        """Count one failure; True when the breaker trips (retire it)."""
        count = self._consecutive.get(worker_id, 0) + 1
        self._consecutive[worker_id] = count
        return count >= self.threshold

    def forget(self, worker_id: int) -> None:
        """The worker was replaced; its lineage's count dies with it."""
        self._consecutive.pop(worker_id, None)


@dataclass
class PoolStats:
    """What one chunked run actually did, for post-hoc auditing."""

    chunks: int = 0
    completed: int = 0
    retries: int = 0
    task_failures: int = 0
    crashes: int = 0
    timeouts: int = 0
    workers_retired: int = 0
    pings_sent: int = 0
    pongs_received: int = 0
    checkpoint_hits: int = 0
    backoff_seconds: float = 0.0
    #: Spans split in half because idle workers outnumbered remaining
    #: spans (work-stealing runs only; always 0 on the chunk scheduler).
    steals: int = 0

    def summary(self) -> str:
        return (f"{self.completed}/{self.chunks} chunk(s) completed "
                f"({self.checkpoint_hits} from checkpoint), "
                f"{self.retries} retrie(s), {self.crashes} crash(es), "
                f"{self.timeouts} timeout(s), "
                f"{self.task_failures} task failure(s), "
                f"{self.workers_retired} worker(s) retired, "
                f"{self.steals} span steal(s), "
                f"{self.pongs_received}/{self.pings_sent} "
                f"heartbeat(s) answered")
