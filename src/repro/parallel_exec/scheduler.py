"""Chunked scheduling: shard a work list across the pool, keep order.

The scheduler owns the recovery policy (:class:`RetryPolicy`):

* A **task exception** aborts the whole run immediately by default
  (re-running the same deterministic chunk would fail again) as
  :class:`TaskError`; with ``retry_task_errors`` it is retried on
  another worker instead, which is what makes quarantine meaningful.
* A **worker crash** (process died mid-chunk) requeues the chunk on a
  fresh worker after an exponential-backoff-with-jitter delay, up to
  ``max_retries`` extra attempts.
* A **per-chunk timeout** kills the worker holding the chunk and
  requeues it the same way.
* A chunk that fails on ``quarantine_threshold`` *distinct* workers is
  **poisoned**: the input, not a worker, is at fault.  With
  ``policy.quarantine`` it is pulled from rotation and reported
  (:class:`QuarantinedChunk`) while the rest of the batch completes;
  without it, the run raises as before.
* A worker that fails ``breaker_threshold`` chunks consecutively trips
  its **circuit breaker** and is retired/respawned even if alive.
* Idle workers answer **heartbeat pings**; one that stays silent past
  ``heartbeat_timeout`` is declared wedged and replaced.

One chunk is in flight per worker, so the timeout clock starts at
dispatch, not at submission.  Completed chunks land in a
:class:`~repro.parallel_exec.results.ResultAssembler`, which restores
submission order regardless of completion order — and, when a
``checkpoint`` manifest path is given, are persisted as they finish so
a killed run resumes without redoing them.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..observability import metrics as _metrics
from ..observability import timeline as _timeline
from .checkpoint import BatchCheckpoint, SpanCheckpoint
from .hardening import (
    PoolStats,
    QuarantineLog,
    QuarantinedChunk,
    RetryPolicy,
    WorkerLedger,
)
from .pool import (
    METRICS_CHUNK_INDEX,
    PING_CHUNK_INDEX,
    WorkerPool,
    _TASK_KINDS,
)
from .results import (
    ChunkQuarantinedError,
    ChunkTimeoutError,
    ResultAssembler,
    SpanAssembler,
    TaskError,
    WorkerCrashError,
)

#: How long one poll of the result queue blocks while chunks are in
#: flight; bounds how stale a timeout/crash/heartbeat check can be.
_POLL_INTERVAL = 0.05

#: How long the scheduler waits for workers to answer the end-of-run
#: metrics-snapshot request before giving up (a wedged worker must not
#: hang the batch on account of observability).
_METRICS_COLLECT_TIMEOUT = 5.0

# Parent-side pool metrics.  Chunk latency is dispatch → result as the
# scheduler sees it; pool_events_total mirrors PoolStats so one armed
# run lands retries/quarantines/heartbeats in the shared registry.
_CHUNK_LATENCY = _metrics.registry().histogram(
    "pool_chunk_latency_seconds",
    "Chunk latency from dispatch to result (parent view)",
    ("kind", "transport"))
_POOL_EVENTS = _metrics.registry().counter(
    "pool_events_total", "Pool lifecycle events, mirroring PoolStats",
    ("event",))
_STEALS = _metrics.registry().counter(
    "pool_steal_total",
    "Spans split because idle workers outnumbered remaining spans")


class ChunkView(Sequence):
    """A zero-copy view of one chunk: ``items[start:stop]`` by reference.

    ``chunked()`` used to materialize every chunk with
    ``list(items[i:i+n])``, duplicating the whole batch in the parent
    before a single byte was dispatched.  A view only holds indices into
    the original sequence.  It still *looks* like the list it replaces:
    equality, ``repr`` (checkpoint fingerprints hash ``repr(payload)``)
    and pickling (``__reduce__`` sends just the slice, so a queue never
    serializes the backing sequence) all match the eager list exactly.
    """

    __slots__ = ("_items", "_start", "_stop")

    def __init__(self, items: Sequence[Any], start: int, stop: int) -> None:
        self._items = items
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return ChunkView(self._items, self._start + start,
                                 self._start + stop)
            return [self._items[self._start + i]
                    for i in range(start, stop, step)]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"chunk index out of range: {index}")
        return self._items[self._start + index]

    def __iter__(self):
        for i in range(self._start, self._stop):
            yield self._items[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, ChunkView)):
            return len(self) == len(other) \
                and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return repr(list(self))

    def __reduce__(self):
        # Pickle as the plain list of just this chunk's items — a naive
        # pickle of the view would drag the entire backing sequence
        # through the queue for every chunk.
        return (list, (list(self),))


def chunked(items: Sequence[Any], chunk_size: int) -> List[ChunkView]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``.

    Chunks are :class:`ChunkView` index ranges over ``items`` — no item
    is copied until a chunk crosses a process boundary (where pickling a
    view sends only that chunk's slice).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive: {chunk_size}")
    return [ChunkView(items, i, min(i + chunk_size, len(items)))
            for i in range(0, len(items), chunk_size)]


@dataclass
class ChunkRunReport:
    """Everything one chunked run produced, including its failures."""

    #: Per-chunk results in submission order; None where quarantined.
    chunk_results: List[Optional[List[Any]]]
    quarantined: List[QuarantinedChunk] = field(default_factory=list)
    stats: PoolStats = field(default_factory=PoolStats)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def flat(self) -> List[Any]:
        """All item results concatenated; raises if any chunk failed."""
        if self.quarantined:
            raise ChunkQuarantinedError(
                [q.chunk_index for q in self.quarantined])
        out: List[Any] = []
        for values in self.chunk_results:
            out.extend(values)  # type: ignore[arg-type]
        return out

    def summary(self) -> str:
        lines = [self.stats.summary()]
        if self.quarantined:
            lines.append(f"{len(self.quarantined)} chunk(s) quarantined:")
            lines.extend(f"  {q}" for q in self.quarantined)
        else:
            lines.append("no chunks quarantined")
        return "\n".join(lines)


def run_chunks(kind: str, chunks: Sequence[Any], *,
               workers: int,
               timeout: Optional[float] = None,
               max_retries: int = 2,
               policy: Optional[RetryPolicy] = None,
               checkpoint: Optional[str] = None) -> List[Any]:
    """Run every chunk payload through task ``kind``; flat ordered results.

    Each chunk's task must return a list; the returned list is the
    concatenation in chunk order.  ``workers=1`` runs everything in this
    process (no multiprocessing, no IPC) — the serial reference the
    parallel path is tested against.  Quarantined chunks (only possible
    with ``policy.quarantine``) raise :class:`ChunkQuarantinedError`
    here; use :func:`run_chunks_report` to get partial results instead.
    """
    report = run_chunks_report(kind, chunks, workers=workers,
                               timeout=timeout, max_retries=max_retries,
                               policy=policy, checkpoint=checkpoint)
    return report.flat()


def run_chunks_report(kind: str, chunks: Sequence[Any], *,
                      workers: int,
                      timeout: Optional[float] = None,
                      max_retries: int = 2,
                      policy: Optional[RetryPolicy] = None,
                      checkpoint: Optional[str] = None) -> ChunkRunReport:
    """Like :func:`run_chunks` but returns the full
    :class:`ChunkRunReport` (per-chunk results, quarantine log, pool
    stats) instead of a flat list."""
    if kind not in _TASK_KINDS:
        raise KeyError(f"unknown task kind: {kind!r}")
    if policy is None:
        # Legacy-compatible policy: no backoff, fail fast, and never let
        # the quarantine threshold cut a caller's retry budget short.
        policy = RetryPolicy(max_retries=max_retries,
                             quarantine_threshold=max(3, max_retries + 1))
    stats = PoolStats(chunks=len(chunks))
    quarantine = QuarantineLog(policy.quarantine_threshold)
    if not chunks:
        return ChunkRunReport(chunk_results=[], stats=stats)

    assembler = ResultAssembler(len(chunks))
    manifest: Optional[BatchCheckpoint] = None
    if checkpoint is not None:
        manifest = BatchCheckpoint(checkpoint)
        for index, values in manifest.begin(kind, chunks).items():
            assembler.add(index, values)
            stats.checkpoint_hits += 1
            stats.completed += 1

    if workers <= 1:
        _run_serial(kind, chunks, policy, assembler, quarantine, stats,
                    manifest)
    elif not assembler.complete:
        remaining = sum(1 for i in range(len(chunks))
                        if not assembler.has(i))
        pool = WorkerPool(min(workers, remaining))
        try:
            _drive(pool, kind, chunks, timeout, policy, assembler,
                   quarantine, stats, manifest)
        finally:
            pool.shutdown()

    if _metrics.ARMED:
        _record_pool_stats(stats)
    return ChunkRunReport(chunk_results=assembler.partial(),
                          quarantined=quarantine.quarantined(),
                          stats=stats)


def _record_pool_stats(stats: PoolStats) -> None:
    """Mirror one run's :class:`PoolStats` into the metrics registry."""
    for event, value in vars(stats).items():
        if value:
            _POOL_EVENTS.inc(value, event=event)


def _collect_worker_metrics(pool: WorkerPool) -> None:
    """Merge every live worker's metrics snapshot into the parent.

    Runs after the last chunk completes and before shutdown.  Workers
    reset their (fork-inherited) registry at startup, so each snapshot
    is a pure per-worker delta and the commutative merge rules make the
    parent totals independent of arrival order.  A worker that fails to
    answer within :data:`_METRICS_COLLECT_TIMEOUT` just drops its
    snapshot — observability never hangs a finished batch.
    """
    expected = 0
    for worker in pool.workers.values():
        if worker.alive and not worker.busy:
            worker.request_metrics()
            expected += 1
    registry = _metrics.registry()
    deadline = time.monotonic() + _METRICS_COLLECT_TIMEOUT
    while expected > 0 and time.monotonic() < deadline:
        message = pool.poll_result(_POLL_INTERVAL)
        if message is None:
            continue
        _, chunk_index, ok, payload = message
        if chunk_index == METRICS_CHUNK_INDEX and ok:
            registry.merge(payload)
            expected -= 1


def _run_serial(kind: str, chunks: Sequence[Any], policy: RetryPolicy,
                assembler: ResultAssembler, quarantine: QuarantineLog,
                stats: PoolStats,
                manifest: Optional[BatchCheckpoint]) -> None:
    """In-process execution: same recording, no pool.

    Retrying in the same process cannot change a deterministic task's
    outcome, so a failing chunk is quarantined (or raised) immediately.
    """
    fn = _TASK_KINDS[kind]
    for chunk_index, payload in enumerate(chunks):
        if assembler.has(chunk_index):
            continue
        try:
            values = fn(payload)
        except Exception as exc:
            stats.task_failures += 1
            message = f"{type(exc).__name__}: {exc}"
            if policy.quarantine:
                quarantine.force(chunk_index, 0, message)
                assembler.add_failed(chunk_index)
                continue
            raise TaskError(chunk_index, message) from exc
        assembler.add(chunk_index, values)
        stats.completed += 1
        if manifest is not None:
            manifest.record(chunk_index, values)


def _resolve_failed(chunk_index: int, policy: RetryPolicy,
                    assembler: ResultAssembler,
                    quarantine: QuarantineLog, error) -> None:
    """A chunk is out of attempts or poisoned: quarantine or raise."""
    quarantine.force(chunk_index)
    if not policy.quarantine:
        raise error
    assembler.add_failed(chunk_index)


def _drive(pool: WorkerPool, kind: str, chunks: Sequence[Any],
           timeout: Optional[float], policy: RetryPolicy,
           assembler: ResultAssembler, quarantine: QuarantineLog,
           stats: PoolStats,
           manifest: Optional[BatchCheckpoint]) -> None:
    rng = policy.make_rng()
    ledger = WorkerLedger(policy.breaker_threshold)
    labeled_lanes: set = set()
    #: (ready_at, chunk_index, payload, attempts) awaiting a worker;
    #: ready_at implements the backoff delay between attempts.
    pending = [(0.0, i, payload, 1) for i, payload in enumerate(chunks)
               if not assembler.has(i)]

    def retire(worker, graceful: bool = False) -> None:
        ledger.forget(worker.worker_id)
        pool.replace(worker, graceful=graceful)

    def requeue(chunk_index: int, payload: Any, attempts: int,
                now: float) -> None:
        delay = policy.delay(attempts + 1, rng)
        stats.retries += 1
        stats.backoff_seconds += delay
        pending.append((now + delay, chunk_index, payload, attempts + 1))

    while not assembler.complete:
        now = time.monotonic()
        for worker in list(pool.workers.values()):
            if not worker.busy and not worker.alive:
                # Died between chunks (e.g. OOM-killed while idle):
                # replace it so the pool keeps its size.
                retire(worker)

        ready = sorted(e for e in pending if e[0] <= now)
        for worker in pool.idle_workers():
            if not ready:
                break
            entry = ready.pop(0)
            pending.remove(entry)
            _, chunk_index, payload, attempts = entry
            worker.dispatch(chunk_index, kind, payload, attempts, timeout)

        if policy.heartbeat_interval is not None:
            _heartbeat(pool, policy, stats, retire, now)

        message = pool.poll_result(_POLL_INTERVAL)
        if message is not None:
            worker_id, chunk_index, ok, payload = message
            now = time.monotonic()
            worker = pool.workers.get(worker_id)
            if worker is not None:
                worker.heard_from(now)
            if chunk_index == PING_CHUNK_INDEX:
                stats.pongs_received += 1
                continue
            if chunk_index == METRICS_CHUNK_INDEX:
                if ok:
                    _metrics.registry().merge(payload)
                continue
            task = worker.task if worker is not None else None
            held = task is not None and task[0] == chunk_index
            duration = (now - worker.dispatched_at
                        if held and worker.dispatched_at is not None
                        else None)
            if held:
                worker.finish()
            if ok:
                ledger.record_success(worker_id)
                if duration is not None:
                    if _metrics.ARMED:
                        _CHUNK_LATENCY.observe(duration, kind=kind,
                                               transport="pickle")
                    tl = _timeline.ACTIVE
                    if tl is not None:
                        tid = 1 + worker_id
                        if tid not in labeled_lanes:
                            labeled_lanes.add(tid)
                            tl.label_lane(tid, f"worker {worker_id}")
                        tl.complete(f"chunk {chunk_index}",
                                    tl.now() - duration, duration, tid=tid,
                                    args={"kind": kind,
                                          "attempts": task[3]})
                if not assembler.has(chunk_index):
                    assembler.add(chunk_index, payload)
                    stats.completed += 1
                    if manifest is not None:
                        manifest.record(chunk_index, payload)
                continue
            # A task exception, reported by a surviving worker.
            stats.task_failures += 1
            if not policy.retry_task_errors:
                raise TaskError(chunk_index, payload)
            if not held or assembler.has(chunk_index):
                # Stale report: the chunk was already requeued (its
                # worker timed out) or resolved by another copy.
                continue
            _, _, chunk_payload, attempts = task
            if ledger.record_failure(worker_id):
                # Breaker trip: the worker is alive and idle (we just
                # took its failure report), so retire it gracefully —
                # a SIGKILL here can catch its queue feeder thread still
                # holding the shared result queue's write lock and
                # deadlock every other worker's put().
                stats.workers_retired += 1
                retire(worker, graceful=True)
            poisoned = quarantine.record(chunk_index, worker_id, payload)
            if poisoned or attempts > policy.max_retries:
                _resolve_failed(chunk_index, policy, assembler, quarantine,
                                TaskError(chunk_index, payload))
            else:
                requeue(chunk_index, chunk_payload, attempts, now)
            continue

        now = time.monotonic()
        for worker in pool.busy_workers():
            chunk_index, _, payload, attempts = worker.task
            if assembler.has(chunk_index):
                # Result arrived from a requeued copy.  Just free the
                # slot: the worker finishes its stale computation and
                # the late report is ignored (killing it mid-run could
                # wedge the shared result queue).
                worker.finish()
                continue
            crashed = not worker.alive
            if not crashed and not worker.timed_out(now):
                continue
            worker_id = worker.worker_id
            if crashed:
                stats.crashes += 1
                reason = "worker crashed"
                error = WorkerCrashError(chunk_index, attempts)
            else:
                stats.timeouts += 1
                reason = f"timed out after {timeout:g}s"
                error = ChunkTimeoutError(chunk_index, timeout or 0.0,
                                          attempts)
            retire(worker)
            poisoned = quarantine.record(chunk_index, worker_id, reason)
            if poisoned or attempts > policy.max_retries:
                _resolve_failed(chunk_index, policy, assembler, quarantine,
                                error)
            else:
                requeue(chunk_index, payload, attempts, now)

    if _metrics.ARMED:
        _collect_worker_metrics(pool)


def _heartbeat(pool: WorkerPool, policy: RetryPolicy, stats: PoolStats,
               retire, now: float) -> None:
    """Ping idle workers; replace any that stay silent too long.

    Busy workers are intentionally exempt: their liveness is covered by
    the crash check and the per-chunk timeout, and a ping would sit
    behind the running chunk in the task queue anyway.
    """
    for worker in list(pool.workers.values()):
        if worker.busy or not worker.alive:
            continue
        if worker.ping_sent is not None:
            if now - worker.ping_sent > policy.heartbeat_timeout:
                # Graceful first: if the silence was a false positive
                # the sentinel lets it exit cleanly instead of risking
                # a kill mid-write on the shared result queue.
                stats.workers_retired += 1
                retire(worker, graceful=True)
        elif now - worker.last_seen >= policy.heartbeat_interval:
            worker.send_ping(now)
            stats.pings_sent += 1


def run_chunked(kind: str, items: Sequence[Any], *,
                workers: int,
                chunk_size: int,
                timeout: Optional[float] = None,
                max_retries: int = 2,
                policy: Optional[RetryPolicy] = None,
                checkpoint: Optional[str] = None) -> List[Any]:
    """Chunk ``items`` and run them; results stay in item order."""
    return run_chunks(kind, chunked(items, chunk_size), workers=workers,
                      timeout=timeout, max_retries=max_retries,
                      policy=policy, checkpoint=checkpoint)


# -- adaptive spans + work stealing ------------------------------------------------
#
# The chunk path above fixes the work units before the first dispatch;
# on ragged batches the run then serializes behind whichever worker drew
# the most expensive chunk.  The span path plans *coarse* item ranges
# from a cost estimate and lets idle workers steal half of the largest
# remaining span, so the tail of a batch self-balances.  Spans carry no
# payload of their own — the zero-copy transport (repro.parallel_exec.shm)
# keeps the bytes in a shared-memory arena and a span names an item
# range inside it.

#: One work unit: the half-open item range ``[start, stop)``.
Span = Tuple[int, int]


def plan_spans(sizes: Sequence[int], workers: int, *,
               lane_width: int = 1,
               base_cost: int = 4096,
               spans_per_worker: int = 4) -> List[Span]:
    """Cut ``len(sizes)`` items into cost-balanced initial spans.

    Each item's cost is estimated as ``base_cost + sizes[i]`` (a fixed
    per-message overhead plus its payload bytes); spans aim for
    ``workers * spans_per_worker`` roughly equal cost shares, and every
    boundary except the last lands on a multiple of ``lane_width`` so a
    span always dispatches whole lock-step lane groups (the SoA engine's
    ``soa_width()`` batch, or SN states for per-call engines).
    """
    total = len(sizes)
    if total == 0:
        return []
    if lane_width < 1:
        raise ValueError(f"lane width must be positive: {lane_width}")
    target_cost = (sum(sizes) + base_cost * total) \
        / max(1, workers * spans_per_worker)
    spans: List[Span] = []
    start = 0
    acc = 0
    for i, size in enumerate(sizes):
        acc += base_cost + size
        at_lane = (i + 1) % lane_width == 0
        if acc >= target_cost and (at_lane or i + 1 == total):
            spans.append((start, i + 1))
            start = i + 1
            acc = 0
    if start < total:
        spans.append((start, total))
    return spans


class SpanDeque:
    """The parent-owned deque of undispatched spans, with steal-half.

    Dispatch normally pops the leftmost span (keeping items roughly in
    order, which keeps checkpoint manifests compact).  When idle workers
    outnumber the remaining spans — the tail of a ragged batch — the
    *largest* remaining span is split in half on a lane-group boundary:
    the caller gets the left half, the right half stays stealable.  One
    straggler span therefore keeps getting halved until every worker is
    busy or spans reach one lane group.
    """

    def __init__(self, spans: Sequence[Span], lane_width: int = 1) -> None:
        self._spans = deque(spans)
        self.lane_width = max(1, lane_width)
        self.steals = 0

    def __len__(self) -> int:
        return len(self._spans)

    def push(self, span: Span) -> None:
        self._spans.append(span)

    def take(self, idle_workers: int = 1) -> Optional[Span]:
        """The next span to dispatch, splitting under scarcity."""
        if not self._spans:
            return None
        if len(self._spans) >= max(1, idle_workers):
            return self._spans.popleft()
        index = max(range(len(self._spans)),
                    key=lambda i: self._spans[i][1] - self._spans[i][0])
        start, stop = self._spans[index]
        lanes = -(-(stop - start) // self.lane_width)
        if lanes <= 1:  # one lane group cannot split further
            del self._spans[index]
            return (start, stop)
        mid = start + (lanes // 2) * self.lane_width
        self._spans[index] = (mid, stop)
        self.steals += 1
        if _metrics.ARMED:
            _STEALS.inc()
        return (start, mid)


@dataclass
class SpanRunReport:
    """Everything one span-scheduled run produced."""

    #: Per-*item* results in submission order; None where the covering
    #: span was quarantined.
    results: List[Optional[Any]]
    #: Quarantine records whose ``chunk_index`` is the span tuple.
    quarantined: List[QuarantinedChunk] = field(default_factory=list)
    stats: PoolStats = field(default_factory=PoolStats)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def flat(self) -> List[Any]:
        """All item results; raises if any span was quarantined."""
        if self.quarantined:
            raise ChunkQuarantinedError(
                [q.chunk_index for q in self.quarantined])
        return list(self.results)

    def summary(self) -> str:
        lines = [self.stats.summary()]
        if self.quarantined:
            lines.append(f"{len(self.quarantined)} span(s) quarantined:")
            lines.extend(f"  {q}" for q in self.quarantined)
        else:
            lines.append("no spans quarantined")
        return "\n".join(lines)


def run_spans_report(kind: str, total: int, *,
                     workers: int,
                     payload: Callable[[int, int], Any],
                     collect: Callable[[int, int, Any], List[Any]],
                     spans: Sequence[Span],
                     lane_width: int = 1,
                     timeout: Optional[float] = None,
                     max_retries: int = 2,
                     policy: Optional[RetryPolicy] = None,
                     checkpoint: Optional[str] = None,
                     fingerprint: str = "",
                     transport: str = "shm") -> SpanRunReport:
    """Run ``total`` items as work-stealing spans through task ``kind``.

    The scheduler never touches item payloads: ``payload(start, stop)``
    builds the (small) task descriptor a worker receives for one span,
    and ``collect(start, stop, result)`` turns a worker's reply into the
    per-item values — for the shared-memory transport that means reading
    the digests the worker wrote in place.  Retry, circuit-breaker,
    quarantine, heartbeat and checkpoint semantics mirror
    :func:`run_chunks_report`, keyed on span ranges instead of chunk
    indices; ``fingerprint`` guards a resumed checkpoint against a
    different batch.
    """
    if kind not in _TASK_KINDS:
        raise KeyError(f"unknown task kind: {kind!r}")
    if policy is None:
        policy = RetryPolicy(max_retries=max_retries,
                             quarantine_threshold=max(3, max_retries + 1))
    spans = list(spans)
    stats = PoolStats(chunks=len(spans))
    quarantine = QuarantineLog(policy.quarantine_threshold)
    assembler = SpanAssembler(total)
    if total == 0:
        return SpanRunReport(results=[], stats=stats)

    manifest: Optional[SpanCheckpoint] = None
    if checkpoint is not None:
        manifest = SpanCheckpoint(checkpoint)
        for start, stop, values in manifest.begin(kind, fingerprint, total):
            if assembler.add(start, stop, values):
                stats.checkpoint_hits += 1
                stats.completed += 1
        if stats.checkpoint_hits:
            # Replan over what is actually left; the deque's stealing
            # re-splits these coarse gaps as workers go idle.
            spans = assembler.uncovered_runs()
            stats.chunks = stats.checkpoint_hits + len(spans)

    if workers <= 1:
        _run_serial_spans(kind, spans, payload, collect, policy, assembler,
                          quarantine, stats, manifest)
    elif not assembler.complete:
        pool = WorkerPool(min(workers, len(spans)) or 1)
        try:
            _drive_spans(pool, kind, payload, collect, spans, lane_width,
                         timeout, policy, assembler, quarantine, stats,
                         manifest, transport)
        finally:
            pool.shutdown()

    if _metrics.ARMED:
        _record_pool_stats(stats)
    return SpanRunReport(results=assembler.values(),
                         quarantined=quarantine.quarantined(),
                         stats=stats)


def _run_serial_spans(kind: str, spans: Sequence[Span], payload, collect,
                      policy: RetryPolicy, assembler: SpanAssembler,
                      quarantine: QuarantineLog, stats: PoolStats,
                      manifest: Optional[SpanCheckpoint]) -> None:
    """In-process span execution: same recording, no pool."""
    fn = _TASK_KINDS[kind]
    for start, stop in spans:
        if assembler.covered(start, stop):
            continue
        try:
            result = fn(payload(start, stop))
        except Exception as exc:
            stats.task_failures += 1
            message = f"{type(exc).__name__}: {exc}"
            if policy.quarantine:
                quarantine.force((start, stop), 0, message)
                assembler.add_failed(start, stop)
                continue
            raise TaskError((start, stop), message) from exc
        values = collect(start, stop, result)
        if assembler.add(start, stop, values):
            stats.completed += 1
            if manifest is not None:
                manifest.record(start, stop, values)


def _resolve_failed_span(span: Span, policy: RetryPolicy,
                         assembler: SpanAssembler,
                         quarantine: QuarantineLog, error) -> None:
    """A span is out of attempts or poisoned: quarantine or raise."""
    quarantine.force(span)
    if not policy.quarantine:
        raise error
    assembler.add_failed(*span)


def _drive_spans(pool: WorkerPool, kind: str, payload, collect,
                 spans: Sequence[Span], lane_width: int,
                 timeout: Optional[float], policy: RetryPolicy,
                 assembler: SpanAssembler, quarantine: QuarantineLog,
                 stats: PoolStats, manifest: Optional[SpanCheckpoint],
                 transport: str) -> None:
    rng = policy.make_rng()
    ledger = WorkerLedger(policy.breaker_threshold)
    labeled_lanes: set = set()
    work = SpanDeque(spans, lane_width)
    #: dispatch id -> span; ids are fresh per dispatch so a late result
    #: from a replaced worker still names the right span.
    span_of: Dict[int, Span] = {}
    next_id = 0
    #: (ready_at, span, attempts) awaiting re-dispatch after a failure.
    pending: List[Tuple[float, Span, int]] = []

    def retire(worker, graceful: bool = False) -> None:
        ledger.forget(worker.worker_id)
        pool.replace(worker, graceful=graceful)

    def requeue(span: Span, attempts: int, now: float) -> None:
        delay = policy.delay(attempts + 1, rng)
        stats.retries += 1
        stats.backoff_seconds += delay
        pending.append((now + delay, span, attempts + 1))

    while not assembler.complete:
        now = time.monotonic()
        for worker in list(pool.workers.values()):
            if not worker.busy and not worker.alive:
                retire(worker)

        idle = pool.idle_workers()
        ready = sorted(e for e in pending if e[0] <= now)
        for slot, worker in enumerate(idle):
            if ready:
                entry = ready.pop(0)
                pending.remove(entry)
                _, span, attempts = entry
            else:
                span = work.take(len(idle) - slot)
                if span is None:
                    break
                attempts = 1
            sid = next_id
            next_id += 1
            span_of[sid] = span
            worker.dispatch(sid, kind, payload(*span), attempts, timeout)

        if policy.heartbeat_interval is not None:
            _heartbeat(pool, policy, stats, retire, now)

        message = pool.poll_result(_POLL_INTERVAL)
        if message is not None:
            worker_id, sid, ok, result = message
            now = time.monotonic()
            worker = pool.workers.get(worker_id)
            if worker is not None:
                worker.heard_from(now)
            if sid == PING_CHUNK_INDEX:
                stats.pongs_received += 1
                continue
            if sid == METRICS_CHUNK_INDEX:
                if ok:
                    _metrics.registry().merge(result)
                continue
            span = span_of.get(sid)
            task = worker.task if worker is not None else None
            held = task is not None and task[0] == sid
            duration = (now - worker.dispatched_at
                        if held and worker.dispatched_at is not None
                        else None)
            if held:
                worker.finish()
            if span is None:
                continue  # dispatch record lost with a replaced worker
            if ok:
                ledger.record_success(worker_id)
                if duration is not None:
                    if _metrics.ARMED:
                        _CHUNK_LATENCY.observe(duration, kind=kind,
                                               transport=transport)
                    tl = _timeline.ACTIVE
                    if tl is not None:
                        tid = 1 + worker_id
                        if tid not in labeled_lanes:
                            labeled_lanes.add(tid)
                            tl.label_lane(tid, f"worker {worker_id}")
                        tl.complete(f"span {span[0]}:{span[1]}",
                                    tl.now() - duration, duration, tid=tid,
                                    args={"kind": kind,
                                          "transport": transport,
                                          "attempts": task[3]})
                if not assembler.covered(*span):
                    values = collect(span[0], span[1], result)
                    if assembler.add(*span, values):
                        stats.completed += 1
                        if manifest is not None:
                            manifest.record(span[0], span[1], values)
                continue
            # A task exception, reported by a surviving worker.
            stats.task_failures += 1
            if not policy.retry_task_errors:
                raise TaskError(span, result)
            if not held or assembler.covered(*span):
                continue  # stale report: already requeued or resolved
            attempts = task[3]
            if ledger.record_failure(worker_id):
                # Breaker trip — graceful retire, exactly as in _drive:
                # a SIGKILL here could catch the worker's feeder thread
                # holding the shared result queue's write lock.
                stats.workers_retired += 1
                retire(worker, graceful=True)
            poisoned = quarantine.record(span, worker_id, result)
            if poisoned or attempts > policy.max_retries:
                _resolve_failed_span(span, policy, assembler, quarantine,
                                     TaskError(span, result))
            else:
                requeue(span, attempts, now)
            continue

        now = time.monotonic()
        for worker in pool.busy_workers():
            sid, _, _, attempts = worker.task
            span = span_of.get(sid)
            if span is None or assembler.covered(*span):
                # A duplicate dispatch already resolved this span; let
                # the worker finish its stale copy (identical bytes land
                # in the arena's slots, so in-place writes stay safe).
                worker.finish()
                continue
            crashed = not worker.alive
            if not crashed and not worker.timed_out(now):
                continue
            worker_id = worker.worker_id
            if crashed:
                stats.crashes += 1
                reason = "worker crashed"
                error = WorkerCrashError(span, attempts)
            else:
                stats.timeouts += 1
                reason = f"timed out after {timeout:g}s"
                error = ChunkTimeoutError(span, timeout or 0.0, attempts)
            retire(worker)
            poisoned = quarantine.record(span, worker_id, reason)
            if poisoned or attempts > policy.max_retries:
                _resolve_failed_span(span, policy, assembler, quarantine,
                                     error)
            else:
                requeue(span, attempts, now)

    stats.steals = work.steals
    stats.chunks += work.steals  # every split adds one span to the run
    if _metrics.ARMED:
        _collect_worker_metrics(pool)
