"""Chunked scheduling: shard a work list across the pool, keep order.

The scheduler owns the recovery policy (:class:`RetryPolicy`):

* A **task exception** aborts the whole run immediately by default
  (re-running the same deterministic chunk would fail again) as
  :class:`TaskError`; with ``retry_task_errors`` it is retried on
  another worker instead, which is what makes quarantine meaningful.
* A **worker crash** (process died mid-chunk) requeues the chunk on a
  fresh worker after an exponential-backoff-with-jitter delay, up to
  ``max_retries`` extra attempts.
* A **per-chunk timeout** kills the worker holding the chunk and
  requeues it the same way.
* A chunk that fails on ``quarantine_threshold`` *distinct* workers is
  **poisoned**: the input, not a worker, is at fault.  With
  ``policy.quarantine`` it is pulled from rotation and reported
  (:class:`QuarantinedChunk`) while the rest of the batch completes;
  without it, the run raises as before.
* A worker that fails ``breaker_threshold`` chunks consecutively trips
  its **circuit breaker** and is retired/respawned even if alive.
* Idle workers answer **heartbeat pings**; one that stays silent past
  ``heartbeat_timeout`` is declared wedged and replaced.

One chunk is in flight per worker, so the timeout clock starts at
dispatch, not at submission.  Completed chunks land in a
:class:`~repro.parallel_exec.results.ResultAssembler`, which restores
submission order regardless of completion order — and, when a
``checkpoint`` manifest path is given, are persisted as they finish so
a killed run resumes without redoing them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..observability import metrics as _metrics
from ..observability import timeline as _timeline
from .checkpoint import BatchCheckpoint
from .hardening import (
    PoolStats,
    QuarantineLog,
    QuarantinedChunk,
    RetryPolicy,
    WorkerLedger,
)
from .pool import (
    METRICS_CHUNK_INDEX,
    PING_CHUNK_INDEX,
    WorkerPool,
    _TASK_KINDS,
)
from .results import (
    ChunkQuarantinedError,
    ChunkTimeoutError,
    ResultAssembler,
    TaskError,
    WorkerCrashError,
)

#: How long one poll of the result queue blocks while chunks are in
#: flight; bounds how stale a timeout/crash/heartbeat check can be.
_POLL_INTERVAL = 0.05

#: How long the scheduler waits for workers to answer the end-of-run
#: metrics-snapshot request before giving up (a wedged worker must not
#: hang the batch on account of observability).
_METRICS_COLLECT_TIMEOUT = 5.0

# Parent-side pool metrics.  Chunk latency is dispatch → result as the
# scheduler sees it; pool_events_total mirrors PoolStats so one armed
# run lands retries/quarantines/heartbeats in the shared registry.
_CHUNK_LATENCY = _metrics.registry().histogram(
    "pool_chunk_latency_seconds",
    "Chunk latency from dispatch to result (parent view)", ("kind",))
_POOL_EVENTS = _metrics.registry().counter(
    "pool_events_total", "Pool lifecycle events, mirroring PoolStats",
    ("event",))


def chunked(items: Sequence[Any], chunk_size: int) -> List[List[Any]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive: {chunk_size}")
    return [list(items[i:i + chunk_size])
            for i in range(0, len(items), chunk_size)]


@dataclass
class ChunkRunReport:
    """Everything one chunked run produced, including its failures."""

    #: Per-chunk results in submission order; None where quarantined.
    chunk_results: List[Optional[List[Any]]]
    quarantined: List[QuarantinedChunk] = field(default_factory=list)
    stats: PoolStats = field(default_factory=PoolStats)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def flat(self) -> List[Any]:
        """All item results concatenated; raises if any chunk failed."""
        if self.quarantined:
            raise ChunkQuarantinedError(
                [q.chunk_index for q in self.quarantined])
        out: List[Any] = []
        for values in self.chunk_results:
            out.extend(values)  # type: ignore[arg-type]
        return out

    def summary(self) -> str:
        lines = [self.stats.summary()]
        if self.quarantined:
            lines.append(f"{len(self.quarantined)} chunk(s) quarantined:")
            lines.extend(f"  {q}" for q in self.quarantined)
        else:
            lines.append("no chunks quarantined")
        return "\n".join(lines)


def run_chunks(kind: str, chunks: Sequence[Any], *,
               workers: int,
               timeout: Optional[float] = None,
               max_retries: int = 2,
               policy: Optional[RetryPolicy] = None,
               checkpoint: Optional[str] = None) -> List[Any]:
    """Run every chunk payload through task ``kind``; flat ordered results.

    Each chunk's task must return a list; the returned list is the
    concatenation in chunk order.  ``workers=1`` runs everything in this
    process (no multiprocessing, no IPC) — the serial reference the
    parallel path is tested against.  Quarantined chunks (only possible
    with ``policy.quarantine``) raise :class:`ChunkQuarantinedError`
    here; use :func:`run_chunks_report` to get partial results instead.
    """
    report = run_chunks_report(kind, chunks, workers=workers,
                               timeout=timeout, max_retries=max_retries,
                               policy=policy, checkpoint=checkpoint)
    return report.flat()


def run_chunks_report(kind: str, chunks: Sequence[Any], *,
                      workers: int,
                      timeout: Optional[float] = None,
                      max_retries: int = 2,
                      policy: Optional[RetryPolicy] = None,
                      checkpoint: Optional[str] = None) -> ChunkRunReport:
    """Like :func:`run_chunks` but returns the full
    :class:`ChunkRunReport` (per-chunk results, quarantine log, pool
    stats) instead of a flat list."""
    if kind not in _TASK_KINDS:
        raise KeyError(f"unknown task kind: {kind!r}")
    if policy is None:
        # Legacy-compatible policy: no backoff, fail fast, and never let
        # the quarantine threshold cut a caller's retry budget short.
        policy = RetryPolicy(max_retries=max_retries,
                             quarantine_threshold=max(3, max_retries + 1))
    stats = PoolStats(chunks=len(chunks))
    quarantine = QuarantineLog(policy.quarantine_threshold)
    if not chunks:
        return ChunkRunReport(chunk_results=[], stats=stats)

    assembler = ResultAssembler(len(chunks))
    manifest: Optional[BatchCheckpoint] = None
    if checkpoint is not None:
        manifest = BatchCheckpoint(checkpoint)
        for index, values in manifest.begin(kind, chunks).items():
            assembler.add(index, values)
            stats.checkpoint_hits += 1
            stats.completed += 1

    if workers <= 1:
        _run_serial(kind, chunks, policy, assembler, quarantine, stats,
                    manifest)
    elif not assembler.complete:
        remaining = sum(1 for i in range(len(chunks))
                        if not assembler.has(i))
        pool = WorkerPool(min(workers, remaining))
        try:
            _drive(pool, kind, chunks, timeout, policy, assembler,
                   quarantine, stats, manifest)
        finally:
            pool.shutdown()

    if _metrics.ARMED:
        _record_pool_stats(stats)
    return ChunkRunReport(chunk_results=assembler.partial(),
                          quarantined=quarantine.quarantined(),
                          stats=stats)


def _record_pool_stats(stats: PoolStats) -> None:
    """Mirror one run's :class:`PoolStats` into the metrics registry."""
    for event, value in vars(stats).items():
        if value:
            _POOL_EVENTS.inc(value, event=event)


def _collect_worker_metrics(pool: WorkerPool) -> None:
    """Merge every live worker's metrics snapshot into the parent.

    Runs after the last chunk completes and before shutdown.  Workers
    reset their (fork-inherited) registry at startup, so each snapshot
    is a pure per-worker delta and the commutative merge rules make the
    parent totals independent of arrival order.  A worker that fails to
    answer within :data:`_METRICS_COLLECT_TIMEOUT` just drops its
    snapshot — observability never hangs a finished batch.
    """
    expected = 0
    for worker in pool.workers.values():
        if worker.alive and not worker.busy:
            worker.request_metrics()
            expected += 1
    registry = _metrics.registry()
    deadline = time.monotonic() + _METRICS_COLLECT_TIMEOUT
    while expected > 0 and time.monotonic() < deadline:
        message = pool.poll_result(_POLL_INTERVAL)
        if message is None:
            continue
        _, chunk_index, ok, payload = message
        if chunk_index == METRICS_CHUNK_INDEX and ok:
            registry.merge(payload)
            expected -= 1


def _run_serial(kind: str, chunks: Sequence[Any], policy: RetryPolicy,
                assembler: ResultAssembler, quarantine: QuarantineLog,
                stats: PoolStats,
                manifest: Optional[BatchCheckpoint]) -> None:
    """In-process execution: same recording, no pool.

    Retrying in the same process cannot change a deterministic task's
    outcome, so a failing chunk is quarantined (or raised) immediately.
    """
    fn = _TASK_KINDS[kind]
    for chunk_index, payload in enumerate(chunks):
        if assembler.has(chunk_index):
            continue
        try:
            values = fn(payload)
        except Exception as exc:
            stats.task_failures += 1
            message = f"{type(exc).__name__}: {exc}"
            if policy.quarantine:
                quarantine.force(chunk_index, 0, message)
                assembler.add_failed(chunk_index)
                continue
            raise TaskError(chunk_index, message) from exc
        assembler.add(chunk_index, values)
        stats.completed += 1
        if manifest is not None:
            manifest.record(chunk_index, values)


def _resolve_failed(chunk_index: int, policy: RetryPolicy,
                    assembler: ResultAssembler,
                    quarantine: QuarantineLog, error) -> None:
    """A chunk is out of attempts or poisoned: quarantine or raise."""
    quarantine.force(chunk_index)
    if not policy.quarantine:
        raise error
    assembler.add_failed(chunk_index)


def _drive(pool: WorkerPool, kind: str, chunks: Sequence[Any],
           timeout: Optional[float], policy: RetryPolicy,
           assembler: ResultAssembler, quarantine: QuarantineLog,
           stats: PoolStats,
           manifest: Optional[BatchCheckpoint]) -> None:
    rng = policy.make_rng()
    ledger = WorkerLedger(policy.breaker_threshold)
    labeled_lanes: set = set()
    #: (ready_at, chunk_index, payload, attempts) awaiting a worker;
    #: ready_at implements the backoff delay between attempts.
    pending = [(0.0, i, payload, 1) for i, payload in enumerate(chunks)
               if not assembler.has(i)]

    def retire(worker, graceful: bool = False) -> None:
        ledger.forget(worker.worker_id)
        pool.replace(worker, graceful=graceful)

    def requeue(chunk_index: int, payload: Any, attempts: int,
                now: float) -> None:
        delay = policy.delay(attempts + 1, rng)
        stats.retries += 1
        stats.backoff_seconds += delay
        pending.append((now + delay, chunk_index, payload, attempts + 1))

    while not assembler.complete:
        now = time.monotonic()
        for worker in list(pool.workers.values()):
            if not worker.busy and not worker.alive:
                # Died between chunks (e.g. OOM-killed while idle):
                # replace it so the pool keeps its size.
                retire(worker)

        ready = sorted(e for e in pending if e[0] <= now)
        for worker in pool.idle_workers():
            if not ready:
                break
            entry = ready.pop(0)
            pending.remove(entry)
            _, chunk_index, payload, attempts = entry
            worker.dispatch(chunk_index, kind, payload, attempts, timeout)

        if policy.heartbeat_interval is not None:
            _heartbeat(pool, policy, stats, retire, now)

        message = pool.poll_result(_POLL_INTERVAL)
        if message is not None:
            worker_id, chunk_index, ok, payload = message
            now = time.monotonic()
            worker = pool.workers.get(worker_id)
            if worker is not None:
                worker.heard_from(now)
            if chunk_index == PING_CHUNK_INDEX:
                stats.pongs_received += 1
                continue
            if chunk_index == METRICS_CHUNK_INDEX:
                if ok:
                    _metrics.registry().merge(payload)
                continue
            task = worker.task if worker is not None else None
            held = task is not None and task[0] == chunk_index
            duration = (now - worker.dispatched_at
                        if held and worker.dispatched_at is not None
                        else None)
            if held:
                worker.finish()
            if ok:
                ledger.record_success(worker_id)
                if duration is not None:
                    if _metrics.ARMED:
                        _CHUNK_LATENCY.observe(duration, kind=kind)
                    tl = _timeline.ACTIVE
                    if tl is not None:
                        tid = 1 + worker_id
                        if tid not in labeled_lanes:
                            labeled_lanes.add(tid)
                            tl.label_lane(tid, f"worker {worker_id}")
                        tl.complete(f"chunk {chunk_index}",
                                    tl.now() - duration, duration, tid=tid,
                                    args={"kind": kind,
                                          "attempts": task[3]})
                if not assembler.has(chunk_index):
                    assembler.add(chunk_index, payload)
                    stats.completed += 1
                    if manifest is not None:
                        manifest.record(chunk_index, payload)
                continue
            # A task exception, reported by a surviving worker.
            stats.task_failures += 1
            if not policy.retry_task_errors:
                raise TaskError(chunk_index, payload)
            if not held or assembler.has(chunk_index):
                # Stale report: the chunk was already requeued (its
                # worker timed out) or resolved by another copy.
                continue
            _, _, chunk_payload, attempts = task
            if ledger.record_failure(worker_id):
                # Breaker trip: the worker is alive and idle (we just
                # took its failure report), so retire it gracefully —
                # a SIGKILL here can catch its queue feeder thread still
                # holding the shared result queue's write lock and
                # deadlock every other worker's put().
                stats.workers_retired += 1
                retire(worker, graceful=True)
            poisoned = quarantine.record(chunk_index, worker_id, payload)
            if poisoned or attempts > policy.max_retries:
                _resolve_failed(chunk_index, policy, assembler, quarantine,
                                TaskError(chunk_index, payload))
            else:
                requeue(chunk_index, chunk_payload, attempts, now)
            continue

        now = time.monotonic()
        for worker in pool.busy_workers():
            chunk_index, _, payload, attempts = worker.task
            if assembler.has(chunk_index):
                # Result arrived from a requeued copy.  Just free the
                # slot: the worker finishes its stale computation and
                # the late report is ignored (killing it mid-run could
                # wedge the shared result queue).
                worker.finish()
                continue
            crashed = not worker.alive
            if not crashed and not worker.timed_out(now):
                continue
            worker_id = worker.worker_id
            if crashed:
                stats.crashes += 1
                reason = "worker crashed"
                error = WorkerCrashError(chunk_index, attempts)
            else:
                stats.timeouts += 1
                reason = f"timed out after {timeout:g}s"
                error = ChunkTimeoutError(chunk_index, timeout or 0.0,
                                          attempts)
            retire(worker)
            poisoned = quarantine.record(chunk_index, worker_id, reason)
            if poisoned or attempts > policy.max_retries:
                _resolve_failed(chunk_index, policy, assembler, quarantine,
                                error)
            else:
                requeue(chunk_index, payload, attempts, now)

    if _metrics.ARMED:
        _collect_worker_metrics(pool)


def _heartbeat(pool: WorkerPool, policy: RetryPolicy, stats: PoolStats,
               retire, now: float) -> None:
    """Ping idle workers; replace any that stay silent too long.

    Busy workers are intentionally exempt: their liveness is covered by
    the crash check and the per-chunk timeout, and a ping would sit
    behind the running chunk in the task queue anyway.
    """
    for worker in list(pool.workers.values()):
        if worker.busy or not worker.alive:
            continue
        if worker.ping_sent is not None:
            if now - worker.ping_sent > policy.heartbeat_timeout:
                # Graceful first: if the silence was a false positive
                # the sentinel lets it exit cleanly instead of risking
                # a kill mid-write on the shared result queue.
                stats.workers_retired += 1
                retire(worker, graceful=True)
        elif now - worker.last_seen >= policy.heartbeat_interval:
            worker.send_ping(now)
            stats.pings_sent += 1


def run_chunked(kind: str, items: Sequence[Any], *,
                workers: int,
                chunk_size: int,
                timeout: Optional[float] = None,
                max_retries: int = 2,
                policy: Optional[RetryPolicy] = None,
                checkpoint: Optional[str] = None) -> List[Any]:
    """Chunk ``items`` and run them; results stay in item order."""
    return run_chunks(kind, chunked(items, chunk_size), workers=workers,
                      timeout=timeout, max_retries=max_retries,
                      policy=policy, checkpoint=checkpoint)
