"""Chunked scheduling: shard a work list across the pool, keep order.

The scheduler owns the retry policy:

* A **task exception** aborts the whole run immediately (re-running the
  same deterministic chunk would fail again) as :class:`TaskError`.
* A **worker crash** (process died mid-chunk) requeues the chunk on a
  fresh worker, up to ``max_retries`` extra attempts, then raises
  :class:`WorkerCrashError`.
* A **per-chunk timeout** kills the worker holding the chunk, requeues
  it the same way, then raises :class:`ChunkTimeoutError`.

One chunk is in flight per worker, so the timeout clock starts at
dispatch, not at submission.  Completed chunks land in a
:class:`~repro.parallel_exec.results.ResultAssembler`, which restores
submission order regardless of completion order.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, List, Optional, Sequence

from .pool import WorkerPool, _TASK_KINDS
from .results import (
    ChunkTimeoutError,
    ResultAssembler,
    TaskError,
    WorkerCrashError,
)

#: How long one poll of the result queue blocks while chunks are in
#: flight; bounds how stale a timeout/crash check can be.
_POLL_INTERVAL = 0.05


def chunked(items: Sequence[Any], chunk_size: int) -> List[List[Any]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive: {chunk_size}")
    return [list(items[i:i + chunk_size])
            for i in range(0, len(items), chunk_size)]


def run_chunks(kind: str, chunks: Sequence[Any], *,
               workers: int,
               timeout: Optional[float] = None,
               max_retries: int = 2) -> List[Any]:
    """Run every chunk payload through task ``kind``; flat ordered results.

    Each chunk's task must return a list; the returned list is the
    concatenation in chunk order.  ``workers=1`` runs everything in this
    process (no multiprocessing, no IPC) — the serial reference the
    parallel path is tested against.
    """
    if kind not in _TASK_KINDS:
        raise KeyError(f"unknown task kind: {kind!r}")
    if not chunks:
        return []
    if workers <= 1:
        fn = _TASK_KINDS[kind]
        out: List[Any] = []
        for chunk_index, payload in enumerate(chunks):
            try:
                out.extend(fn(payload))
            except Exception as exc:
                raise TaskError(chunk_index,
                                f"{type(exc).__name__}: {exc}") from exc
        return out

    pool = WorkerPool(min(workers, len(chunks)))
    try:
        assembler = _drive(pool, kind, chunks, timeout, max_retries)
    finally:
        pool.shutdown()
    return assembler.assemble()


def _drive(pool: WorkerPool, kind: str, chunks: Sequence[Any],
           timeout: Optional[float], max_retries: int) -> ResultAssembler:
    assembler = ResultAssembler(len(chunks))
    #: (chunk_index, payload, attempts) awaiting a worker.
    pending = deque((i, payload, 1) for i, payload in enumerate(chunks))

    while not assembler.complete:
        for worker in list(pool.workers.values()):
            if not worker.busy and not worker.alive:
                # Died between chunks (e.g. OOM-killed while idle):
                # replace it so the pool keeps its size.
                pool.replace(worker)
        for worker in pool.idle_workers():
            if not pending:
                break
            chunk_index, payload, attempts = pending.popleft()
            worker.dispatch(chunk_index, kind, payload, attempts, timeout)

        message = pool.poll_result(_POLL_INTERVAL)
        if message is not None:
            worker_id, chunk_index, ok, payload = message
            worker = pool.workers.get(worker_id)
            if worker is not None and worker.task is not None \
                    and worker.task[0] == chunk_index:
                worker.finish()
            if not ok:
                raise TaskError(chunk_index, payload)
            assembler.add(chunk_index, payload)
            continue

        now = time.monotonic()
        for worker in pool.busy_workers():
            chunk_index, _, payload, attempts = worker.task
            if assembler.has(chunk_index):
                # Result arrived from a requeued copy; free this slot.
                _, _ = pool.replace(worker)
                continue
            if not worker.alive:
                if attempts > max_retries:
                    raise WorkerCrashError(chunk_index, attempts)
                pool.replace(worker)
                pending.append((chunk_index, payload, attempts + 1))
            elif worker.timed_out(now):
                if attempts > max_retries:
                    raise ChunkTimeoutError(chunk_index, timeout or 0.0,
                                            attempts)
                pool.replace(worker)
                pending.append((chunk_index, payload, attempts + 1))
    return assembler


def run_chunked(kind: str, items: Sequence[Any], *,
                workers: int,
                chunk_size: int,
                timeout: Optional[float] = None,
                max_retries: int = 2) -> List[Any]:
    """Chunk ``items`` and run them; results stay in item order."""
    return run_chunks(kind, chunked(items, chunk_size), workers=workers,
                      timeout=timeout, max_retries=max_retries)
