"""Checkpoint/resume for chunked batch runs (JSON manifest on disk).

A killed batch run (OOM, preemption, ^C) should not redo finished work.
The scheduler writes a manifest as chunks complete; a rerun over the
*same* chunk list loads the manifest, pre-fills the finished chunks and
only dispatches the rest — producing byte-identical, order-preserving
results.

Safety properties:

* **Atomic writes** — the manifest is rewritten to a temp file and
  ``os.replace``-d into place, so a kill mid-write leaves the previous
  consistent manifest, never a torn one.
* **Fingerprinted inputs** — the manifest stores a SHA-256 fingerprint
  per chunk payload; a resume whose chunk list does not match *exactly*
  (kind, count and every fingerprint) starts fresh instead of silently
  splicing stale results into a different batch.
* **Typed values** — chunk results are lists of ``bytes`` (digests) or
  JSON-native values; each element is tagged on disk (``{"b": hex}`` vs
  ``{"j": value}``) so round-trips are exact.

The manifest is written by the parent process only — workers never see
it — so there is no write concurrency to manage.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence

#: Bumped on any incompatible manifest change.
MANIFEST_VERSION = 1

#: Span-keyed manifests (work-stealing runs) live in their own version
#: space: a chunk-keyed manifest can never be mistaken for a span one.
SPAN_MANIFEST_VERSION = 2


class ManifestVersionError(ValueError):
    """The on-disk manifest has an incompatible format version.

    Distinct from a fingerprint mismatch (different *inputs*, safely
    restarted from scratch): a version mismatch means the manifest was
    written by an incompatible build — or a chunk-keyed manifest was
    handed to a span run or vice versa — and silently discarding it
    would throw away real completed work.  Surfaces to the CLI as a
    one-line exit-2 diagnostic.
    """


def chunk_fingerprint(payload: Any) -> str:
    """Stable content hash of one chunk payload.

    ``repr`` is stable for the payload shapes the pool carries (tuples,
    lists, str/bytes/int) and keeps the fingerprint independent of any
    pickle protocol details.
    """
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def _encode_values(values: List[Any]) -> List[Dict[str, Any]]:
    encoded = []
    for value in values:
        if isinstance(value, bytes):
            encoded.append({"b": value.hex()})
        else:
            encoded.append({"j": value})
    return encoded


def _decode_values(entries: List[Dict[str, Any]]) -> List[Any]:
    values: List[Any] = []
    for entry in entries:
        if "b" in entry:
            values.append(bytes.fromhex(entry["b"]))
        else:
            values.append(entry["j"])
    return values


class BatchCheckpoint:
    """One run's resumable manifest at ``path``."""

    #: The manifest format this checkpoint class reads and writes.
    expected_version = MANIFEST_VERSION

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._manifest: Optional[Dict[str, Any]] = None

    def _check_version(self, existing: Optional[Dict[str, Any]]) -> None:
        if existing is None:
            return
        version = existing.get("version")
        if isinstance(version, int) and version != self.expected_version:
            kinds = {MANIFEST_VERSION: "chunk-keyed",
                     SPAN_MANIFEST_VERSION: "span-keyed"}
            found = kinds.get(version, f"unknown (version {version})")
            raise ManifestVersionError(
                f"checkpoint manifest {self.path} is "
                f"{found} format version {version}, but this run needs "
                f"version {self.expected_version} — finish it with the "
                f"run parameters that created it, or remove the file to "
                f"start over")

    def begin(self, kind: str,
              chunks: Sequence[Any]) -> Dict[int, List[Any]]:
        """Open (or create) the manifest for this chunk list.

        Returns the already-completed chunks as ``{index: values}`` when
        the on-disk manifest matches ``kind`` and every chunk
        fingerprint; otherwise the manifest is reset and the returned
        dict is empty.  A manifest from an *incompatible format version*
        (a different build, or a span manifest handed to a chunk run)
        raises :class:`ManifestVersionError` instead of silently
        discarding completed work.
        """
        fingerprints = [chunk_fingerprint(chunk) for chunk in chunks]
        existing = self._read()
        self._check_version(existing)
        if (existing is not None
                and existing.get("version") == MANIFEST_VERSION
                and existing.get("kind") == kind
                and existing.get("fingerprints") == fingerprints):
            self._manifest = existing
            completed: Dict[int, List[Any]] = {}
            for key, values in existing.get("completed", {}).items():
                index = int(key)
                if 0 <= index < len(chunks):
                    completed[index] = _decode_values(values)
            return completed
        self._manifest = {
            "version": MANIFEST_VERSION,
            "kind": kind,
            "num_chunks": len(chunks),
            "fingerprints": fingerprints,
            "completed": {},
        }
        self._write()
        return {}

    def record(self, chunk_index: int, values: List[Any]) -> None:
        """Persist one finished chunk (atomic rewrite)."""
        if self._manifest is None:
            raise RuntimeError("record() before begin()")
        self._manifest["completed"][str(chunk_index)] = \
            _encode_values(values)
        self._write()

    @property
    def completed_count(self) -> int:
        if self._manifest is None:
            return 0
        return len(self._manifest["completed"])

    def _read(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _write(self) -> None:
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(self._manifest, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


class SpanCheckpoint(BatchCheckpoint):
    """A resumable manifest keyed by item *ranges* instead of chunks.

    Work-stealing runs cannot fingerprint per-chunk payloads — the work
    units are decided while the run executes.  Instead the caller
    fingerprints the whole batch once (algorithm, geometry and message
    bytes) and completed spans are recorded as ``"start:stop"`` keys.  A
    resume whose kind, fingerprint or item count differs starts fresh;
    a matching one returns every recorded span, and the scheduler plans
    new spans over whatever ranges remain.
    """

    expected_version = SPAN_MANIFEST_VERSION

    def begin(self, kind: str, fingerprint: str,  # type: ignore[override]
              total: int) -> List[tuple]:
        existing = self._read()
        self._check_version(existing)
        if (existing is not None
                and existing.get("version") == SPAN_MANIFEST_VERSION
                and existing.get("kind") == kind
                and existing.get("fingerprint") == fingerprint
                and existing.get("total") == total):
            self._manifest = existing
            completed = []
            for key, values in existing.get("completed", {}).items():
                start, stop = (int(part) for part in key.split(":"))
                if 0 <= start <= stop <= total:
                    completed.append((start, stop, _decode_values(values)))
            return completed
        self._manifest = {
            "version": SPAN_MANIFEST_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "total": total,
            "completed": {},
        }
        self._write()
        return []

    def record(self, start: int, stop: int,  # type: ignore[override]
               values: List[Any]) -> None:
        """Persist one finished span (atomic rewrite)."""
        if self._manifest is None:
            raise RuntimeError("record() before begin()")
        self._manifest["completed"][f"{start}:{stop}"] = \
            _encode_values(values)
        self._write()
