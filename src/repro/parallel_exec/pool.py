"""The multiprocessing worker pool: process lifecycle and task transport.

Each worker is a long-lived child process with its *own* task queue (so
the scheduler always knows which chunk a worker holds, and a kill only
ever loses that one chunk) and a result queue shared by the pool.  Tasks
are named *kinds* resolved through a registry: the parent registers a
callable under a string key, the child inherits the registry through
``fork`` (or re-imports it via the module import on other start methods),
and the queue only ever carries ``(chunk_index, kind, payload)`` — never
code objects.

Workers deliberately hold mutable per-process caches (the batch-hashing
task keeps a warm :class:`~repro.programs.session.Session` per
architecture), which is the whole point of a persistent pool: predecode
and superblock construction happen once per process, not once per chunk.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..observability import metrics as _metrics

#: kind -> callable(payload) -> list of results.  Populated at import
#: time by task-owning modules (and by tests before they start a pool).
_TASK_KINDS: Dict[str, Callable[[Any], Any]] = {}

#: Reserved task kind for worker health checks: the worker answers
#: immediately with ``_PONG`` instead of consulting the registry.
#: Heartbeat messages use this chunk index, which no real chunk can have.
PING_TASK_KIND = "parallel_exec.ping"
PING_CHUNK_INDEX = -1
_PONG = "pong"

#: Reserved task kind for metrics collection: the worker answers with a
#: snapshot of its (process-local) metrics registry, which the scheduler
#: merges into the parent's.  Same transport pattern as the ping.
METRICS_TASK_KIND = "parallel_exec.metrics"
METRICS_CHUNK_INDEX = -2

# Worker-side instrumentation (coarse: once per task, never inside a
# task).  Labeled per worker so merged parent totals stay attributable.
_QUEUE_WAIT = _metrics.registry().histogram(
    "pool_worker_queue_wait_seconds",
    "Time a worker sat idle waiting for its next task", ("worker",))
_TASK_SECONDS = _metrics.registry().histogram(
    "pool_worker_task_seconds",
    "Worker-side task execution time", ("worker", "kind"))


def register_task_kind(kind: str, fn: Callable[[Any], Any]) -> None:
    """Register ``fn`` to run in workers for tasks named ``kind``.

    Registration must happen at import time (or before the pool starts):
    forked workers inherit the registry as of the fork.
    """
    _TASK_KINDS[kind] = fn


def _mp_context():
    """Prefer ``fork``: it inherits the task registry and warm caches."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: run tasks until the ``None`` sentinel arrives.

    Results are ``(worker_id, chunk_index, ok, payload)``; a task
    exception is reported (not raised) so the worker survives for the
    next chunk — the scheduler decides whether to abort the run.

    The metrics registry (inherited populated through ``fork``) is reset
    on entry so a later :data:`METRICS_TASK_KIND` snapshot contains only
    *this worker's* activity — the parent merges pure deltas and never
    double-counts its own series.
    """
    _metrics.registry().reset()
    try:
        _worker_loop(worker_id, task_queue, result_queue)
    finally:
        # Close any shared-memory arenas this worker attached for the
        # zero-copy transport.  The parent owns (and unlinks) the
        # segments; this just drops the worker's mappings on clean exit.
        from . import shm as _shm

        _shm.detach_all()


def _worker_loop(worker_id: int, task_queue, result_queue) -> None:
    while True:
        if _metrics.ARMED:
            idle_from = time.monotonic()
            item = task_queue.get()
            _QUEUE_WAIT.observe(time.monotonic() - idle_from,
                                worker=worker_id)
        else:
            item = task_queue.get()
        if item is None:
            return
        chunk_index, kind, payload = item
        if kind == PING_TASK_KIND:
            result_queue.put((worker_id, PING_CHUNK_INDEX, True, _PONG))
            continue
        if kind == METRICS_TASK_KIND:
            result_queue.put((worker_id, METRICS_CHUNK_INDEX, True,
                              _metrics.registry().snapshot()))
            continue
        try:
            fn = _TASK_KINDS[kind]
            if _metrics.ARMED:
                started = time.monotonic()
                result = fn(payload)
                _TASK_SECONDS.observe(time.monotonic() - started,
                                      worker=worker_id, kind=kind)
            else:
                result = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            result_queue.put(
                (worker_id, chunk_index, False,
                 f"{type(exc).__name__}: {exc}")
            )
        else:
            result_queue.put((worker_id, chunk_index, True, result))


class _Worker:
    """One pool slot: a process, its private task queue, and its task."""

    def __init__(self, worker_id: int, ctx, result_queue) -> None:
        self.worker_id = worker_id
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_queue, result_queue),
            daemon=True,
        )
        self.process.start()
        #: (chunk_index, kind, payload, attempts) currently dispatched.
        self.task: Optional[Tuple[int, str, Any, int]] = None
        self.deadline: Optional[float] = None
        #: When the current task was dispatched (chunk-latency metrics
        #: and timeline spans measure dispatch → result).
        self.dispatched_at: Optional[float] = None
        #: Last time this worker was heard from (spawn counts as a sign
        #: of life); feeds the scheduler's heartbeat checks.
        self.last_seen = time.monotonic()
        #: When the outstanding ping was sent, or None.
        self.ping_sent: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def dispatch(self, chunk_index: int, kind: str, payload: Any,
                 attempts: int, timeout: Optional[float]) -> None:
        self.task = (chunk_index, kind, payload, attempts)
        self.deadline = (time.monotonic() + timeout) if timeout else None
        self.dispatched_at = time.monotonic()
        self.task_queue.put((chunk_index, kind, payload))

    def finish(self) -> None:
        self.task = None
        self.deadline = None
        self.dispatched_at = None

    def timed_out(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def send_ping(self, now: float) -> None:
        """Queue a heartbeat; the worker answers when it drains to it."""
        self.ping_sent = now
        self.task_queue.put((PING_CHUNK_INDEX, PING_TASK_KIND, None))

    def request_metrics(self) -> None:
        """Queue a metrics-snapshot request (answered like a ping)."""
        self.task_queue.put((METRICS_CHUNK_INDEX, METRICS_TASK_KIND, None))

    def heard_from(self, now: float) -> None:
        self.last_seen = now
        self.ping_sent = None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        self.task_queue.close()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then force."""
        if self.process.is_alive():
            try:
                self.task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - closed queue
                pass
            self.process.join(timeout=2.0)
        self.kill()


class WorkerPool:
    """A fixed-size pool of persistent workers with crash recovery."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker: {num_workers}")
        self._ctx = _mp_context()
        self.result_queue = self._ctx.Queue()
        self._next_id = 0
        self.workers: Dict[int, _Worker] = {}
        for _ in range(num_workers):
            self._spawn()

    def _spawn(self) -> _Worker:
        worker = _Worker(self._next_id, self._ctx, self.result_queue)
        self.workers[self._next_id] = worker
        self._next_id += 1
        return worker

    def idle_workers(self):
        return [w for w in self.workers.values() if not w.busy and w.alive]

    def busy_workers(self):
        return [w for w in self.workers.values() if w.busy]

    def replace(self, worker: _Worker,
                graceful: bool = False) -> Tuple[Optional[Tuple], "_Worker"]:
        """Retire ``worker``, spawn a fresh one; returns its lost task.

        ``graceful`` retires via the sentinel + join instead of SIGKILL.
        This matters because the result queue's write lock is shared
        across processes: killing a worker in the instant between its
        result write and the lock release would leave the lock held
        forever and deadlock every other worker's ``put``.  Use graceful
        for workers that are alive and idle (circuit breaker); a kill is
        only for workers that are already dead or provably stuck.
        """
        task = worker.task
        if graceful:
            worker.stop()
        else:
            worker.kill()
        del self.workers[worker.worker_id]
        return task, self._spawn()

    def rolling_restart(self) -> int:
        """Gracefully replace every non-busy worker, one at a time.

        The pool never shrinks: each worker is drained via the sentinel
        and a fresh process takes its slot before the next one retires.
        Busy workers are skipped (their in-flight task would be lost);
        callers wanting a full cycle restart between batches.  Returns
        the number of workers replaced.
        """
        replaced = 0
        for worker in list(self.workers.values()):
            if worker.busy:
                continue
            self.replace(worker, graceful=True)
            replaced += 1
        return replaced

    def poll_result(self, timeout: float) -> Optional[Tuple]:
        """Next ``(worker_id, chunk_index, ok, payload)`` or None."""
        try:
            return self.result_queue.get(timeout=timeout)
        except Exception:  # queue.Empty (type depends on context)
            return None

    def shutdown(self, deadline: float = 10.0) -> None:
        """Stop every worker and release the queues, drain-then-close.

        The naive ordering — ``stop()`` each worker serially, then close
        the result queue — can stall for the whole per-worker join
        budget: a worker whose last result is still sitting in its
        feeder thread cannot exit until the parent *reads* the shared
        result queue, and with nobody draining, each ``stop()`` burns
        its join timeout and then SIGKILLs the worker mid-write (which
        can leave the queue's cross-process write lock held and wedge
        every other worker's put).  So: send every sentinel first, keep
        draining the result queue while workers flush and exit, and only
        force-kill whoever is still alive once ``deadline`` expires.
        """
        end = time.monotonic() + deadline
        for worker in self.workers.values():
            if worker.process.is_alive():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover - closed
                    pass
        while (any(w.process.is_alive() for w in self.workers.values())
               and time.monotonic() < end):
            self.poll_result(0.05)
        for worker in self.workers.values():
            # Dead workers: join + close the task queue.  Survivors past
            # the deadline are provably stuck and eat the SIGKILL.
            worker.kill()
        self.workers.clear()
        self.result_queue.close()
        # Anything still buffered is intentionally dropped — the run is
        # over.  cancel_join_thread() keeps close from blocking behind a
        # feeder whose reader no longer exists.
        self.result_queue.cancel_join_thread()


def default_worker_count() -> int:
    """A sensible worker count for this machine (at least 1)."""
    return max(1, os.cpu_count() or 1)
