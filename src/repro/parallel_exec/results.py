"""Deterministic result assembly for chunked parallel work.

Workers finish chunks in whatever order the scheduler and the OS decide;
the assembler restores the submission order so a parallel run returns
exactly what the serial run would.  Each chunk's payload is a *list* of
per-item results; :meth:`ResultAssembler.assemble` concatenates them by
chunk index.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class ParallelExecError(RuntimeError):
    """Base class for worker-pool failures."""


class TaskError(ParallelExecError):
    """A task raised inside a worker.

    Task exceptions are deterministic (re-running the same chunk would
    raise again), so they propagate immediately — only worker *crashes*
    and timeouts are retried.
    """

    def __init__(self, chunk_index: int, message: str) -> None:
        super().__init__(f"chunk {chunk_index} failed: {message}")
        self.chunk_index = chunk_index


class WorkerCrashError(ParallelExecError):
    """A worker process died (signal/exit) too many times on one chunk."""

    def __init__(self, chunk_index: int, attempts: int) -> None:
        super().__init__(
            f"chunk {chunk_index} crashed its worker {attempts} time(s); "
            "giving up"
        )
        self.chunk_index = chunk_index


class ChunkTimeoutError(ParallelExecError):
    """A chunk exceeded its per-chunk timeout too many times."""

    def __init__(self, chunk_index: int, timeout: float,
                 attempts: int) -> None:
        super().__init__(
            f"chunk {chunk_index} timed out after {timeout:g}s on "
            f"{attempts} attempt(s); giving up"
        )
        self.chunk_index = chunk_index


class ChunkQuarantinedError(ParallelExecError):
    """Poisoned chunks were quarantined and the caller asked for a flat
    result — the full per-chunk report is available via
    ``run_chunks_report``."""

    def __init__(self, chunk_indices: List[int]) -> None:
        super().__init__(
            f"{len(chunk_indices)} chunk(s) quarantined: "
            f"{sorted(chunk_indices)}"
        )
        self.chunk_indices = sorted(chunk_indices)


class ResultAssembler:
    """Collects per-chunk results and restores submission order."""

    def __init__(self, num_chunks: int) -> None:
        self._slots: List[Optional[List[Any]]] = [None] * num_chunks
        self._filled = [False] * num_chunks
        self._remaining = num_chunks
        self._failed: List[int] = []

    @property
    def complete(self) -> bool:
        return self._remaining == 0

    @property
    def failed(self) -> List[int]:
        """Indices of chunks resolved as quarantined (no results)."""
        return list(self._failed)

    def add(self, chunk_index: int, values: List[Any]) -> None:
        """Record one chunk's results (duplicate delivery is ignored).

        A duplicate can arrive when a timed-out chunk was requeued but
        the original worker's result was already in flight; the first
        delivery wins, keeping results deterministic.
        """
        if self._filled[chunk_index]:
            return
        self._slots[chunk_index] = values
        self._filled[chunk_index] = True
        self._remaining -= 1

    def add_failed(self, chunk_index: int) -> None:
        """Resolve a chunk as quarantined: its slot stays empty, the run
        can still complete, and :meth:`assemble` will refuse to pretend
        the results are whole."""
        if self._filled[chunk_index]:
            return
        self._filled[chunk_index] = True
        self._failed.append(chunk_index)
        self._remaining -= 1

    def has(self, chunk_index: int) -> bool:
        return self._filled[chunk_index]

    def assemble(self) -> List[Any]:
        """All item results, concatenated in original chunk order."""
        if self._remaining:
            raise ParallelExecError(
                f"{self._remaining} chunk(s) still outstanding"
            )
        if self._failed:
            raise ChunkQuarantinedError(self._failed)
        out: List[Any] = []
        for values in self._slots:
            out.extend(values)  # type: ignore[arg-type]
        return out

    def partial(self) -> List[Optional[List[Any]]]:
        """Per-chunk results in submission order; None where quarantined."""
        if self._remaining:
            raise ParallelExecError(
                f"{self._remaining} chunk(s) still outstanding"
            )
        return list(self._slots)


class SpanAssembler:
    """Per-*item* result slots for span-scheduled (work-stealing) runs.

    The chunk assembler above keys on chunk indices, which are fixed
    before the run starts.  Spans are not: work stealing splits them
    while the run executes, and a checkpoint resume may cover arbitrary
    item ranges from an earlier run.  So this assembler tracks items,
    not work units — any set of disjoint ``[start, stop)`` ranges that
    covers every item completes it, regardless of how the ranges were
    cut.

    Duplicate deliveries (a requeued span whose original result arrives
    late) are ignored whole: :meth:`add` fills a range only when *none*
    of its slots are filled yet, so the first delivery wins exactly as
    in :class:`ResultAssembler`.
    """

    def __init__(self, total: int) -> None:
        self._values: List[Optional[Any]] = [None] * total
        self._filled = [False] * total
        self._remaining = total
        self._failed: List[Tuple[int, int]] = []

    @property
    def complete(self) -> bool:
        return self._remaining == 0

    @property
    def failed_spans(self) -> List[Tuple[int, int]]:
        """Spans resolved as quarantined (their items carry None)."""
        return list(self._failed)

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= len(self._filled):
            raise IndexError(
                f"span [{start}, {stop}) outside 0..{len(self._filled)}")

    def covered(self, start: int, stop: int) -> bool:
        """True when every item in ``[start, stop)`` is resolved."""
        self._check_range(start, stop)
        return all(self._filled[start:stop])

    def add(self, start: int, stop: int, values: List[Any]) -> bool:
        """Record one span's per-item values; False on a duplicate."""
        self._check_range(start, stop)
        if len(values) != stop - start:
            raise ValueError(
                f"span [{start}, {stop}) got {len(values)} value(s)")
        if any(self._filled[start:stop]):
            return False
        for i, value in enumerate(values, start):
            self._values[i] = value
            self._filled[i] = True
        self._remaining -= stop - start
        return True

    def add_failed(self, start: int, stop: int) -> None:
        """Resolve a span as quarantined: its items stay None."""
        self._check_range(start, stop)
        if any(self._filled[start:stop]):
            return
        for i in range(start, stop):
            self._filled[i] = True
        self._remaining -= stop - start
        self._failed.append((start, stop))

    def uncovered_runs(self) -> List[Tuple[int, int]]:
        """Maximal unresolved ranges, for resume replanning."""
        runs: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for i, filled in enumerate(self._filled):
            if filled:
                if start is not None:
                    runs.append((start, i))
                    start = None
            elif start is None:
                start = i
        if start is not None:
            runs.append((start, len(self._filled)))
        return runs

    def values(self) -> List[Optional[Any]]:
        """Per-item results; None where the covering span failed."""
        if self._remaining:
            raise ParallelExecError(
                f"{self._remaining} item(s) still outstanding")
        return list(self._values)
