"""Deterministic result assembly for chunked parallel work.

Workers finish chunks in whatever order the scheduler and the OS decide;
the assembler restores the submission order so a parallel run returns
exactly what the serial run would.  Each chunk's payload is a *list* of
per-item results; :meth:`ResultAssembler.assemble` concatenates them by
chunk index.
"""

from __future__ import annotations

from typing import Any, List, Optional


class ParallelExecError(RuntimeError):
    """Base class for worker-pool failures."""


class TaskError(ParallelExecError):
    """A task raised inside a worker.

    Task exceptions are deterministic (re-running the same chunk would
    raise again), so they propagate immediately — only worker *crashes*
    and timeouts are retried.
    """

    def __init__(self, chunk_index: int, message: str) -> None:
        super().__init__(f"chunk {chunk_index} failed: {message}")
        self.chunk_index = chunk_index


class WorkerCrashError(ParallelExecError):
    """A worker process died (signal/exit) too many times on one chunk."""

    def __init__(self, chunk_index: int, attempts: int) -> None:
        super().__init__(
            f"chunk {chunk_index} crashed its worker {attempts} time(s); "
            "giving up"
        )
        self.chunk_index = chunk_index


class ChunkTimeoutError(ParallelExecError):
    """A chunk exceeded its per-chunk timeout too many times."""

    def __init__(self, chunk_index: int, timeout: float,
                 attempts: int) -> None:
        super().__init__(
            f"chunk {chunk_index} timed out after {timeout:g}s on "
            f"{attempts} attempt(s); giving up"
        )
        self.chunk_index = chunk_index


class ChunkQuarantinedError(ParallelExecError):
    """Poisoned chunks were quarantined and the caller asked for a flat
    result — the full per-chunk report is available via
    ``run_chunks_report``."""

    def __init__(self, chunk_indices: List[int]) -> None:
        super().__init__(
            f"{len(chunk_indices)} chunk(s) quarantined: "
            f"{sorted(chunk_indices)}"
        )
        self.chunk_indices = sorted(chunk_indices)


class ResultAssembler:
    """Collects per-chunk results and restores submission order."""

    def __init__(self, num_chunks: int) -> None:
        self._slots: List[Optional[List[Any]]] = [None] * num_chunks
        self._filled = [False] * num_chunks
        self._remaining = num_chunks
        self._failed: List[int] = []

    @property
    def complete(self) -> bool:
        return self._remaining == 0

    @property
    def failed(self) -> List[int]:
        """Indices of chunks resolved as quarantined (no results)."""
        return list(self._failed)

    def add(self, chunk_index: int, values: List[Any]) -> None:
        """Record one chunk's results (duplicate delivery is ignored).

        A duplicate can arrive when a timed-out chunk was requeued but
        the original worker's result was already in flight; the first
        delivery wins, keeping results deterministic.
        """
        if self._filled[chunk_index]:
            return
        self._slots[chunk_index] = values
        self._filled[chunk_index] = True
        self._remaining -= 1

    def add_failed(self, chunk_index: int) -> None:
        """Resolve a chunk as quarantined: its slot stays empty, the run
        can still complete, and :meth:`assemble` will refuse to pretend
        the results are whole."""
        if self._filled[chunk_index]:
            return
        self._filled[chunk_index] = True
        self._failed.append(chunk_index)
        self._remaining -= 1

    def has(self, chunk_index: int) -> bool:
        return self._filled[chunk_index]

    def assemble(self) -> List[Any]:
        """All item results, concatenated in original chunk order."""
        if self._remaining:
            raise ParallelExecError(
                f"{self._remaining} chunk(s) still outstanding"
            )
        if self._failed:
            raise ChunkQuarantinedError(self._failed)
        out: List[Any] = []
        for values in self._slots:
            out.extend(values)  # type: ignore[arg-type]
        return out

    def partial(self) -> List[Optional[List[Any]]]:
        """Per-chunk results in submission order; None where quarantined."""
        if self._remaining:
            raise ParallelExecError(
                f"{self._remaining} chunk(s) still outstanding"
            )
        return list(self._slots)
