"""Zero-copy shared-memory batch transport for the worker pool.

The pool's original transport pickles every chunk of messages into a
worker's task queue and pickles every digest list back through the
result queue — each payload byte crosses two pipes and four pickle
passes.  Once the SoA mega-batch kernels made per-state compute cheap,
that serialization became the dominant cost of ``run_many`` on large
batches (the same lesson the paper draws for hardware: after the hash
core is fast, throughput is decided by how data moves to and from it).

This module moves the bytes out of the queues entirely:

* A :class:`ShmArena` is one ``multiprocessing.shared_memory`` segment
  holding a *packed message table* — header, per-message
  (offset, length) entries, the payload bytes — plus a reserved digest
  region that workers fill **in place**.
* Task and result queues then carry only small control descriptors
  (segment name, item range); the parent never pickles a payload and a
  worker never pickles a digest.
* The parent-owned :class:`ArenaPool` keeps segments alive across
  batches and hands them out by capacity, so a warm ``run_many`` loop
  reuses one mapping instead of creating/unlinking segments per call.

Ownership and cleanup rules (the part that keeps crash tests leak-free):

* **The parent owns every segment.**  It creates, packs, reads digests
  from, and — on :func:`close_all` or interpreter exit — unlinks them.
  Exactly one ``resource_tracker`` registration exists per segment (the
  parent's); unlink clears it, so no tracker warnings are possible.
* **Workers only ever attach.**  Attachment happens *untracked* (the
  worker suppresses the tracker registration): a worker that is
  SIGKILLed mid-chunk cannot leave a tracker entry behind, and the
  parent retries the chunk on another worker against the *same* arena.
* Attachments are cached per worker process (bounded LRU) and closed on
  clean worker exit; a dead worker's mapping dies with its address
  space.

When segments are unavailable (no POSIX shared memory) or a batch is
too small to amortize packing, callers fall back to the existing pickle
transport — :func:`choose_transport` encodes those rules.
"""

from __future__ import annotations

import atexit
import os
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability import metrics as _metrics

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import shared_memory as _shared_memory
    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    HAVE_SHM = False

__all__ = [
    "HAVE_SHM",
    "MIN_SHM_BYTES",
    "ArenaPool",
    "ShmArena",
    "ShmUnavailableError",
    "arena_pool",
    "attach_arena",
    "choose_transport",
    "close_all",
    "detach_all",
]

#: Batches whose total payload is smaller than this fall back to the
#: pickle transport under ``transport="auto"`` — packing a segment and
#: attaching it in workers costs more than pickling a few KiB.
MIN_SHM_BYTES = 256 * 1024

#: Segment header: magic, version, count, digest_size, payload_offset,
#: digest_offset, used_bytes.
_HEADER = struct.Struct("<IIIIQQQ")
_MAGIC = 0x53483341  # "SH3A"
_VERSION = 1
#: Per-message table entry: absolute offset, length.
_ENTRY = struct.Struct("<QQ")

#: Segment sizes are rounded up to this granularity so slightly
#: different batches land in the same reusable size class.
_SIZE_QUANTUM = 1 << 20

#: Free segments the pool keeps per process; extras are unlinked.
_MAX_FREE_SEGMENTS = 4

#: Cached attachments a worker keeps before closing the oldest.
_MAX_WORKER_ATTACHMENTS = 8

_SHM_BYTES = _metrics.registry().counter(
    "pool_shm_bytes_total",
    "Bytes moved through shared-memory arenas, by operation", ("op",))
_SHM_SEGMENTS = _metrics.registry().gauge(
    "pool_shm_segments_gauge",
    "Live shared-memory segments owned by this process's arena pool")


class ShmUnavailableError(RuntimeError):
    """Shared-memory segments cannot be created on this platform."""


def required_size(sizes: Sequence[int], digest_size: int) -> int:
    """Total segment bytes for a batch of message ``sizes``."""
    return (_HEADER.size + len(sizes) * _ENTRY.size + sum(sizes)
            + len(sizes) * digest_size)


class ShmArena:
    """One shared-memory segment holding a packed message batch.

    The parent constructs arenas through :class:`ArenaPool` and calls
    :meth:`pack`; workers obtain read/write views of the same segment
    through :func:`attach_arena`.  All offsets live inside the segment
    header, so an attached view needs nothing but the segment name.
    """

    def __init__(self, segment, owner: bool) -> None:
        self._segment = segment
        self._owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity(self) -> int:
        return self._segment.size

    # -- parent side ------------------------------------------------------------

    def pack(self, messages: Sequence[bytes], digest_size: int) -> None:
        """Write the message table + payloads; zero the digest region."""
        need = required_size([len(m) for m in messages], digest_size)
        if need > self.capacity:
            raise ValueError(
                f"batch needs {need} bytes, segment {self.name} holds "
                f"{self.capacity}")
        buf = self._segment.buf
        offset = _HEADER.size + len(messages) * _ENTRY.size
        table = _HEADER.size
        for message in messages:
            _ENTRY.pack_into(buf, table, offset, len(message))
            buf[offset:offset + len(message)] = message
            offset += len(message)
            table += _ENTRY.size
        digest_offset = offset
        payload_offset = _HEADER.size + len(messages) * _ENTRY.size
        _HEADER.pack_into(buf, 0, _MAGIC, _VERSION, len(messages),
                          digest_size, payload_offset, digest_offset, need)
        buf[digest_offset:need] = bytes(need - digest_offset)
        if _metrics.ARMED:
            _SHM_BYTES.inc(offset - payload_offset, op="pack")

    # -- both sides -------------------------------------------------------------

    def _header(self) -> Tuple[int, int, int, int]:
        magic, version, count, digest_size, payload_off, digest_off, used \
            = _HEADER.unpack_from(self._segment.buf, 0)
        if magic != _MAGIC or version != _VERSION:
            raise ValueError(
                f"segment {self.name} holds no packed batch "
                f"(magic {magic:#x}, version {version})")
        return count, digest_size, payload_off, digest_off

    @property
    def message_count(self) -> int:
        return self._header()[0]

    def read_messages(self, start: int, stop: int) -> List[bytes]:
        """The packed messages in ``[start, stop)`` (one copy, to hash)."""
        count, _, _, _ = self._header()
        if not 0 <= start <= stop <= count:
            raise IndexError(f"range [{start}, {stop}) outside 0..{count}")
        buf = self._segment.buf
        out: List[bytes] = []
        table = _HEADER.size + start * _ENTRY.size
        for _ in range(stop - start):
            offset, length = _ENTRY.unpack_from(buf, table)
            out.append(bytes(buf[offset:offset + length]))
            table += _ENTRY.size
        if _metrics.ARMED:
            _SHM_BYTES.inc(sum(len(m) for m in out), op="read")
        return out

    def read_message_views(self, start: int, stop: int) -> List[memoryview]:
        """Zero-copy views of the packed messages in ``[start, stop)``.

        For consumers that can hash straight from a buffer (``hashlib``
        accepts any bytes-like object) this skips the per-message copy
        of :meth:`read_messages` entirely — the returned views alias
        the shared segment, so they are only valid while the arena
        stays attached and the parent does not repack it.
        """
        count, _, _, _ = self._header()
        if not 0 <= start <= stop <= count:
            raise IndexError(f"range [{start}, {stop}) outside 0..{count}")
        buf = memoryview(self._segment.buf)
        out: List[memoryview] = []
        table = _HEADER.size + start * _ENTRY.size
        for _ in range(stop - start):
            offset, length = _ENTRY.unpack_from(buf, table)
            out.append(buf[offset:offset + length])
            table += _ENTRY.size
        if _metrics.ARMED:
            _SHM_BYTES.inc(sum(len(m) for m in out), op="read")
        return out

    def write_digests(self, start: int, digests: Sequence[bytes]) -> None:
        """Fill digest slots ``start..start+len(digests)`` in place."""
        count, digest_size, _, digest_off = self._header()
        if start < 0 or start + len(digests) > count:
            raise IndexError(
                f"digest range [{start}, {start + len(digests)}) outside "
                f"0..{count}")
        buf = self._segment.buf
        offset = digest_off + start * digest_size
        for digest in digests:
            if len(digest) != digest_size:
                raise ValueError(
                    f"digest of {len(digest)} bytes in a "
                    f"{digest_size}-byte slot")
            buf[offset:offset + digest_size] = digest
            offset += digest_size

    def read_digests(self, start: int, stop: int) -> List[bytes]:
        """The digests workers wrote for items ``[start, stop)``."""
        count, digest_size, _, digest_off = self._header()
        if not 0 <= start <= stop <= count:
            raise IndexError(f"range [{start}, {stop}) outside 0..{count}")
        buf = self._segment.buf
        offset = digest_off + start * digest_size
        out = []
        for _ in range(stop - start):
            out.append(bytes(buf[offset:offset + digest_size]))
            offset += digest_size
        return out

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if not self._closed:
            self._closed = True
            self._segment.close()

    def unlink(self) -> None:
        """Destroy the segment (parent/owner only)."""
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# -- the parent-side pool ---------------------------------------------------------


class ArenaPool:
    """Reusable, ref-counted shared-memory segments owned by the parent.

    ``acquire`` hands out the smallest free segment that fits (creating
    one if none does); ``release`` returns it for reuse.  The pool keeps
    at most :data:`_MAX_FREE_SEGMENTS` idle segments and unlinks the
    rest immediately, and :meth:`close_all` (also registered ``atexit``)
    unlinks everything — the single place segment lifetimes end.
    """

    def __init__(self, prefix: str = "repro_shm") -> None:
        self._prefix = prefix
        self._free: List[ShmArena] = []
        self._busy: Dict[str, int] = {}
        self._arenas: Dict[str, ShmArena] = {}
        self._counter = 0

    def _update_gauge(self) -> None:
        if _metrics.ARMED:
            _SHM_SEGMENTS.set(len(self._arenas))

    def _create(self, size: int) -> ShmArena:
        if not HAVE_SHM:
            raise ShmUnavailableError(
                "multiprocessing.shared_memory is unavailable")
        self._counter += 1
        name = f"{self._prefix}_{os.getpid()}_{self._counter}"
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=True, size=size)
        except OSError as exc:
            raise ShmUnavailableError(
                f"cannot create shared-memory segment: {exc}") from exc
        arena = ShmArena(segment, owner=True)
        self._arenas[arena.name] = arena
        return arena

    def acquire(self, size: int) -> ShmArena:
        """A segment of at least ``size`` bytes, leased to the caller."""
        size = max(size, 1)
        size = (size + _SIZE_QUANTUM - 1) // _SIZE_QUANTUM * _SIZE_QUANTUM
        fitting = [a for a in self._free if a.capacity >= size]
        if fitting:
            arena = min(fitting, key=lambda a: a.capacity)
            self._free.remove(arena)
        else:
            arena = self._create(size)
        self._busy[arena.name] = self._busy.get(arena.name, 0) + 1
        self._update_gauge()
        return arena

    def retain(self, arena: ShmArena) -> None:
        """Take one more reference on a leased arena."""
        self._busy[arena.name] += 1

    def release(self, arena: ShmArena) -> None:
        """Drop one reference; the last one returns it to the free list."""
        refs = self._busy.get(arena.name)
        if refs is None:
            return
        if refs > 1:
            self._busy[arena.name] = refs - 1
            return
        del self._busy[arena.name]
        if len(self._free) >= _MAX_FREE_SEGMENTS:
            arena.close()
            arena.unlink()
            del self._arenas[arena.name]
        else:
            self._free.append(arena)
        self._update_gauge()

    @property
    def live_segments(self) -> int:
        return len(self._arenas)

    def close_all(self) -> None:
        """Unlink every segment this pool ever created."""
        for arena in self._arenas.values():
            arena.close()
            arena.unlink()
        self._arenas.clear()
        self._free.clear()
        self._busy.clear()
        self._update_gauge()


_POOL: Optional[ArenaPool] = None


def arena_pool() -> ArenaPool:
    """The process-wide arena pool (created on first use)."""
    global _POOL
    if _POOL is None:
        _POOL = ArenaPool()
        atexit.register(_POOL.close_all)
    return _POOL


def close_all() -> None:
    """Unlink every segment the process-wide pool owns (idempotent)."""
    if _POOL is not None:
        _POOL.close_all()


# -- the worker side --------------------------------------------------------------

#: name -> attached arena, insertion-ordered for LRU eviction.
_ATTACHED: Dict[str, ShmArena] = {}


def _attach_untracked(name: str):
    """Attach to a segment without registering it with the resource
    tracker.

    The parent's creation already registered the segment once; a second
    registration from a worker is at best redundant and — if the worker
    ends up with its own tracker process and then dies by SIGKILL —
    produces spurious "leaked shared_memory" warnings for a segment the
    parent still owns.  Python 3.13 has ``track=False`` for exactly
    this; on older versions the registration call is suppressed for the
    duration of the attach.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on Python version
        pass
    from multiprocessing import resource_tracker as _rt

    original = _rt.register
    _rt.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        _rt.register = original


def attach_arena(name: str) -> ShmArena:
    """A (cached) read/write view of the parent's segment ``name``."""
    arena = _ATTACHED.get(name)
    if arena is not None:
        return arena
    if not HAVE_SHM:
        raise ShmUnavailableError(
            "multiprocessing.shared_memory is unavailable")
    arena = ShmArena(_attach_untracked(name), owner=False)
    while len(_ATTACHED) >= _MAX_WORKER_ATTACHMENTS:
        _ATTACHED.pop(next(iter(_ATTACHED))).close()
    _ATTACHED[name] = arena
    return arena


def detach_all() -> None:
    """Close every cached attachment (clean worker shutdown)."""
    for arena in _ATTACHED.values():
        arena.close()
    _ATTACHED.clear()


# -- transport selection ----------------------------------------------------------


def choose_transport(transport: str, total_bytes: int,
                     workers: int) -> str:
    """Resolve a ``--transport`` request to ``"shm"`` or ``"pickle"``.

    * an explicit ``"pickle"`` always wins;
    * an explicit ``"shm"`` wins whenever segments exist at all (it is
      an error to force it on a platform without them);
    * ``"auto"`` picks shm for multi-worker runs whose payload is big
      enough to amortize packing (:data:`MIN_SHM_BYTES`), and the
      pickle path for serial runs and tiny batches.
    """
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(
            f"unknown transport {transport!r}: expected auto, shm or "
            f"pickle")
    if transport == "pickle":
        return "pickle"
    if transport == "shm":
        if not HAVE_SHM:
            raise ShmUnavailableError(
                "transport='shm' requested but "
                "multiprocessing.shared_memory is unavailable")
        return "shm"
    if not HAVE_SHM or workers <= 1 or total_bytes < MIN_SHM_BYTES:
        return "pickle"
    return "shm"
