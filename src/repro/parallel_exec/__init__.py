"""Process-parallel batch execution for the simulator.

The simulator is pure Python, so one process is pinned to one core by the
GIL; production-scale batch hashing (the ROADMAP north star) needs the
other cores.  This package shards large work lists across a pool of
persistent worker processes:

* :mod:`~repro.parallel_exec.pool` — worker lifecycle, task-kind
  registry, per-worker task queues, shared result queue, heartbeat
  pings.
* :mod:`~repro.parallel_exec.scheduler` — chunked distribution, one
  chunk in flight per worker, crash/timeout retry with exponential
  backoff + jitter, per-worker circuit breaker, poisoned-chunk
  quarantine, task errors fail fast by default.
* :mod:`~repro.parallel_exec.hardening` — the :class:`RetryPolicy`
  knobs, quarantine log and pool statistics backing the above.
* :mod:`~repro.parallel_exec.checkpoint` — JSON manifest
  checkpoint/resume so a killed batch run continues where it stopped.
* :mod:`~repro.parallel_exec.results` — deterministic reassembly in
  submission order, and the structured error taxonomy
  (:class:`ParallelExecError` and subclasses).

Workers are *persistent*: each keeps its warm
:class:`~repro.programs.session.Session` (predecoded programs and fused
superblocks survive across chunks), so the per-chunk cost is the
simulation itself, not setup.  The high-level front ends live in
:func:`repro.run_many` and ``batch_sha3_256(..., workers=N)``.
"""

from .checkpoint import (
    BatchCheckpoint,
    ManifestVersionError,
    SpanCheckpoint,
    chunk_fingerprint,
)
from .hardening import (
    PoolStats,
    QuarantinedChunk,
    QuarantineLog,
    RetryPolicy,
)
from .pool import WorkerPool, default_worker_count, register_task_kind
from .results import (
    ChunkQuarantinedError,
    ChunkTimeoutError,
    ParallelExecError,
    ResultAssembler,
    SpanAssembler,
    TaskError,
    WorkerCrashError,
)
from .scheduler import (
    ChunkRunReport,
    ChunkView,
    SpanDeque,
    SpanRunReport,
    chunked,
    plan_spans,
    run_chunked,
    run_chunks,
    run_chunks_report,
    run_spans_report,
)
from .shm import ArenaPool, ShmArena, arena_pool, choose_transport

__all__ = [
    "WorkerPool",
    "default_worker_count",
    "register_task_kind",
    "ResultAssembler",
    "SpanAssembler",
    "ParallelExecError",
    "TaskError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "ChunkQuarantinedError",
    "RetryPolicy",
    "PoolStats",
    "QuarantineLog",
    "QuarantinedChunk",
    "BatchCheckpoint",
    "ManifestVersionError",
    "SpanCheckpoint",
    "chunk_fingerprint",
    "ChunkRunReport",
    "ChunkView",
    "SpanDeque",
    "SpanRunReport",
    "chunked",
    "plan_spans",
    "run_chunked",
    "run_chunks",
    "run_chunks_report",
    "run_spans_report",
    "ArenaPool",
    "ShmArena",
    "arena_pool",
    "choose_transport",
]
