"""Process-parallel batch execution for the simulator.

The simulator is pure Python, so one process is pinned to one core by the
GIL; production-scale batch hashing (the ROADMAP north star) needs the
other cores.  This package shards large work lists across a pool of
persistent worker processes:

* :mod:`~repro.parallel_exec.pool` — worker lifecycle, task-kind
  registry, per-worker task queues, shared result queue.
* :mod:`~repro.parallel_exec.scheduler` — chunked distribution, one
  chunk in flight per worker, per-chunk timeout + crash retry, task
  errors fail fast.
* :mod:`~repro.parallel_exec.results` — deterministic reassembly in
  submission order.

Workers are *persistent*: each keeps its warm
:class:`~repro.programs.session.Session` (predecoded programs and fused
superblocks survive across chunks), so the per-chunk cost is the
simulation itself, not setup.  The high-level front ends live in
:func:`repro.run_many` and ``batch_sha3_256(..., workers=N)``.
"""

from .pool import WorkerPool, default_worker_count, register_task_kind
from .results import (
    ChunkTimeoutError,
    ParallelExecError,
    ResultAssembler,
    TaskError,
    WorkerCrashError,
)
from .scheduler import chunked, run_chunked, run_chunks

__all__ = [
    "WorkerPool",
    "default_worker_count",
    "register_task_kind",
    "ResultAssembler",
    "ParallelExecError",
    "TaskError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "chunked",
    "run_chunked",
    "run_chunks",
]
