"""Fault injection and self-verifying execution.

The paper validates its custom Keccak vector instructions against a
golden software model before trusting the cycle numbers; this package
does the same adversarially, at scale:

* :mod:`~repro.resilience.inject` — plant bit flips (vector regfile,
  scalar regs, memory), decoded-word corruption, or forced
  :class:`~repro.sim.exceptions.SimulationError` at a chosen
  (pc, occurrence), on any of the three execution engines.
* :mod:`~repro.resilience.selfcheck` — differential oracles: lockstep
  predecoded-vs-naive comparison with first-divergence (pc, register,
  lane) reporting, fused-vs-stepped whole-run checks against the golden
  Keccak model, and end-to-end digest cross-checks against ``hashlib``.
* :mod:`~repro.resilience.campaign` — seeded randomized fault campaigns
  that classify every fault as detected / corrupted / masked and fail on
  any silent divergence between engines (``repro faultcampaign``).
"""

from .campaign import (
    CampaignReport,
    FaultTrial,
    TrialResult,
    run_campaign,
)
from .inject import FAULT_KINDS, FaultInjector, FaultSpec, program_pcs
from .selfcheck import (
    Divergence,
    SelfCheckReport,
    crosscheck_digest,
    lockstep_verify,
    selfcheck_run,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "program_pcs",
    "Divergence",
    "SelfCheckReport",
    "lockstep_verify",
    "selfcheck_run",
    "crosscheck_digest",
    "CampaignReport",
    "FaultTrial",
    "TrialResult",
    "run_campaign",
]
