"""Fault injection into the simulated processor.

The injector plants one or more :class:`FaultSpec` faults into a loaded
program and fires them when execution reaches a chosen pc for the N-th
time.  Supported fault kinds:

``vreg-flip``
    Flip one bit of a vector register (the VLEN-bit packed value).
``sreg-flip``
    Flip one bit of a scalar register (x0 stays hard-wired to zero, so a
    flip aimed at it is architecturally masked — by design).
``mem-flip``
    Flip one bit of a data-memory byte.
``word-corrupt``
    Corrupt the decoded instruction: from the trigger on, the entry
    behaves as if one bit of its instruction word had flipped (latched,
    like a stuck bit in the instruction memory).  The corrupted word is
    re-decoded through the same ISA tables, so it either becomes a
    different instruction or raises the same
    :class:`~repro.sim.exceptions.IllegalInstructionError` a per-step
    decoder would raise.
``raise``
    Force a :class:`~repro.sim.exceptions.SimulationError` subclass at
    the trigger — the hook PR 2's mid-block flush/repair contract is
    tested through.

Instrumentation strategy — the hot path stays unpaid:

* **Predecoded / fused processors** are instrumented by *wrapping the
  decoded entry* at the trigger pc and dropping the cached superblocks so
  the next ``run()`` rebuilds them around the wrapper.  Unaffected
  entries and the fused dispatch loop are untouched; with no injector
  armed the execution path is byte-for-byte the PR 2 hot loop.
* **Stepped processors** (``predecode=False``) have no entries to wrap;
  the injector installs :attr:`~repro.sim.processor.SIMDProcessor.
  fault_hook`, which the per-step decode path consults before each
  instruction.

State flips fire exactly once (the trigger occurrence); ``word-corrupt``
latches; ``raise`` fires on every visit from the trigger occurrence on
(the first visit already aborts straight-line runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..isa import decode_operands
from ..sim.exceptions import (
    IllegalInstructionError,
    InjectedFaultError,
    SimulationError,
)
from ..sim.predecode import DecodedInstruction
from ..sim.processor import SIMDProcessor

FAULT_KINDS = ("vreg-flip", "sreg-flip", "mem-flip", "word-corrupt", "raise")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to corrupt, and when.

    ``pc`` is the trigger address; the fault fires the ``occurrence``-th
    time execution reaches it (1-based).  Which payload fields matter
    depends on ``kind`` (see the module docstring).
    """

    kind: str
    pc: int
    occurrence: int = 1
    reg: int = 0
    bit: int = 0
    address: int = 0
    exception: Type[SimulationError] = InjectedFaultError

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.occurrence < 1:
            raise ValueError(f"occurrence must be >= 1: {self.occurrence}")

    def describe(self) -> str:
        target = {
            "vreg-flip": f"v{self.reg} bit {self.bit}",
            "sreg-flip": f"x{self.reg} bit {self.bit}",
            "mem-flip": f"mem[{self.address:#x}] bit {self.bit}",
            "word-corrupt": f"instruction word bit {self.bit}",
            "raise": self.exception.__name__,
        }[self.kind]
        return (f"{self.kind} @ pc={self.pc:#x} "
                f"(occurrence {self.occurrence}): {target}")


@dataclass
class _ArmedFault:
    """Mutable per-run state of one armed fault."""

    spec: FaultSpec
    visits: int = 0
    fired: int = 0
    #: The original executor (predecoded mode) for restore on disarm.
    original_execute: Optional[Callable] = None
    entry: Optional[DecodedInstruction] = None
    #: Original decode of the entry (word-corrupt restore).
    original_word: Optional[int] = None
    original_spec: Optional[object] = None
    original_mnemonic: Optional[str] = None
    #: Stepped-mode word-corrupt: the program word was mutated.
    word_mutated: bool = False

    def should_fire(self) -> bool:
        """Advance the visit counter; does this visit trigger the fault?"""
        self.visits += 1
        spec = self.spec
        if spec.kind in ("word-corrupt", "raise"):
            return self.visits >= spec.occurrence
        return self.visits == spec.occurrence


class FaultInjector:
    """Arms faults on one processor; restores it on disarm/exit.

    Usable as a context manager::

        with FaultInjector(proc) as inj:
            inj.arm(FaultSpec("vreg-flip", pc=0x40, reg=3, bit=17))
            proc.run()
        assert inj.fire_count == 1

    ``arm`` requires a loaded program (the trigger pc must resolve to an
    instruction).  Multiple faults may be armed at distinct pcs.
    """

    def __init__(self, processor: SIMDProcessor) -> None:
        self.processor = processor
        self._armed: Dict[int, _ArmedFault] = {}
        self._hook_installed = False

    # -- public API ---------------------------------------------------------------

    @property
    def fire_count(self) -> int:
        """Total fault activations across all armed faults."""
        return sum(armed.fired for armed in self._armed.values())

    @property
    def fired(self) -> bool:
        return self.fire_count > 0

    def arm(self, spec: FaultSpec) -> None:
        """Instrument the processor for ``spec``."""
        if spec.pc in self._armed:
            raise ValueError(f"a fault is already armed at pc={spec.pc:#x}")
        armed = _ArmedFault(spec)
        pre = self.processor._predecoded
        if pre is not None:
            entry = pre.entry_at(spec.pc)
            if entry is None:
                raise ValueError(
                    f"trigger pc={spec.pc:#x} is outside the loaded program"
                )
            armed.entry = entry
            armed.original_execute = entry.execute
            if spec.kind == "word-corrupt":
                # Swap the entry's whole decode so superblock geometry
                # sees the corrupted instruction's true character (a
                # corrupted word may become a branch/csr/ecall, which
                # must terminate a block exactly as it would have had
                # the program been assembled that way).
                armed.original_word = entry.word
                armed.original_spec = entry.spec
                armed.original_mnemonic = entry.mnemonic
                word = entry.word ^ (1 << (spec.bit & 31))
                execute, corrupt_spec, mnemonic = \
                    self._decode_executor(word, entry.pc)
                entry.word = word
                entry.spec = corrupt_spec
                entry.mnemonic = mnemonic
                entry.execute = self._wrap_corrupt(
                    armed, armed.original_execute, execute)
            else:
                entry.execute = self._wrap(armed)
            # Cached fused blocks captured the original executor (and
            # geometry) — drop them so the next run() rebuilds around
            # the wrapper.
            pre.superblocks = None
            # Disqualify the compiled engine: a flat kernel would run
            # straight past the wrapped executor (see
            # SIMDProcessor._run_compiled).
            self.processor.instrumented += 1
        else:
            if self.processor._program_words.get(spec.pc) is None:
                raise ValueError(
                    f"trigger pc={spec.pc:#x} is outside the loaded program"
                )
            self._install_hook()
        self._armed[spec.pc] = armed

    def disarm(self) -> None:
        """Restore every wrapped entry / hook; the processor is pristine."""
        pre = self.processor._predecoded
        for armed in self._armed.values():
            if armed.entry is not None:
                armed.entry.execute = armed.original_execute
                self.processor.instrumented -= 1
                if armed.original_word is not None:
                    armed.entry.word = armed.original_word
                    armed.entry.spec = armed.original_spec
                    armed.entry.mnemonic = armed.original_mnemonic
            if armed.word_mutated and armed.original_word is not None:
                self.processor._program_words[armed.spec.pc] = \
                    armed.original_word
        if self._armed and pre is not None:
            pre.superblocks = None
        if self._hook_installed:
            self.processor.fault_hook = None
            self._hook_installed = False
        self._armed.clear()

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    # -- predecoded-path instrumentation ----------------------------------------------

    def _wrap(self, armed: _ArmedFault) -> Callable:
        """An executor that applies a flip/raise fault at the trigger."""
        spec = armed.spec
        original = armed.original_execute

        def execute() -> Tuple[int, Optional[int]]:
            if not armed.should_fire():
                return original()
            armed.fired += 1
            if spec.kind == "raise":
                raise spec.exception(
                    f"injected fault: {spec.describe()}", pc=spec.pc
                )
            self._apply_state_flip(spec)
            return original()

        return execute

    def _wrap_corrupt(self, armed: _ArmedFault, original: Callable,
                      corrupted: Callable) -> Callable:
        """An executor that latches onto the corrupted decode."""

        def execute() -> Tuple[int, Optional[int]]:
            if armed.should_fire():
                armed.fired += 1
                return corrupted()
            return original()

        return execute

    def _decode_executor(self, word: int, pc: int):
        """Decode ``word`` into ``(executor, spec, mnemonic)``.

        Mirrors :func:`repro.sim.predecode.predecode` for a single word,
        including the lazily-raising executor for an undecodable one.
        """
        processor = self.processor
        try:
            spec = processor._isa.find(word)
        except LookupError as exc:
            message = str(exc)

            def illegal() -> Tuple[int, Optional[int]]:
                raise IllegalInstructionError(message, pc=pc)

            return illegal, None, "<illegal>"
        ops = decode_operands(word, spec)
        if spec.mnemonic == "vsetvli":
            execute = lambda: (processor._execute_vsetvli(ops), None)  # noqa: E731
        elif spec.extension == "zicsr":
            execute = lambda: (processor._execute_csr(spec, ops), None)  # noqa: E731
        elif spec.extension in ("rvv", "custom"):
            execute = processor.vector.compile_executor(
                spec, ops, processor.scalar.read_register)
        else:
            execute = processor.scalar.compile_executor(spec, ops, pc)
        return execute, spec, spec.mnemonic

    # -- stepped-path instrumentation ---------------------------------------------------

    def _install_hook(self) -> None:
        if self._hook_installed:
            return
        if self.processor.fault_hook is not None:
            raise RuntimeError("another fault hook is already installed")

        def hook(processor: SIMDProcessor, pc: int) -> None:
            armed = self._armed.get(pc)
            if armed is None or not armed.should_fire():
                return
            armed.fired += 1
            spec = armed.spec
            if spec.kind == "word-corrupt":
                if not armed.word_mutated:
                    word = processor._program_words[pc]
                    armed.original_word = word
                    armed.word_mutated = True
                    processor._program_words[pc] = \
                        word ^ (1 << (spec.bit & 31))
                return
            if spec.kind == "raise":
                raise spec.exception(
                    f"injected fault: {spec.describe()}", pc=pc
                )
            self._apply_state_flip(spec)

        self.processor.fault_hook = hook
        self._hook_installed = True

    # -- fault payloads ----------------------------------------------------------------

    def _apply_state_flip(self, spec: FaultSpec) -> None:
        processor = self.processor
        if spec.kind == "vreg-flip":
            regfile = processor.vector.regfile
            bit = spec.bit % processor.vlen_bits
            regfile.write_raw(
                spec.reg, regfile.read_raw(spec.reg) ^ (1 << bit)
            )
        elif spec.kind == "sreg-flip":
            scalar = processor.scalar
            value = scalar.read_register(spec.reg)
            scalar.write_register(spec.reg, value ^ (1 << (spec.bit & 31)))
        elif spec.kind == "mem-flip":
            memory = processor.memory
            byte = memory.load(spec.address, 8)
            memory.store(spec.address, 8, byte ^ (1 << (spec.bit & 7)))


def program_pcs(processor: SIMDProcessor,
                low: Optional[int] = None,
                high: Optional[int] = None) -> List[int]:
    """The pcs of the loaded program (optionally clipped to [low, high)).

    Campaign drivers use this to aim faults at the round body.
    """
    program = processor.program
    if program is None:
        raise ValueError("no program loaded")
    return [
        inst.address for inst in program.instructions
        if (low is None or inst.address >= low)
        and (high is None or inst.address < high)
    ]
