"""Randomized fault campaigns across the three execution engines.

A campaign injects seeded random faults (:class:`~repro.resilience.
inject.FaultSpec`) into Keccak runs on the **stepped**, **predecoded**
and **fused** engines and classifies every outcome:

``detected``
    A :class:`~repro.sim.exceptions.SimulationError` escaped the run
    *with* structured pc/cycle context.
``corrupted``
    The run completed but the final state differs from the golden
    :func:`~repro.keccak.permutation.keccak_f1600` — caught by the
    verification the harness always performs, so not silent.
``masked``
    The run completed and the output is still correct (the fault hit
    dead state, x0, unread memory, …).

Anything else is a **silent divergence** and fails the campaign:

* a detected fault whose exception carries no pc/cycle context;
* a Python-level crash that is not a :class:`SimulationError`;
* a fused or stepped trial whose outcome (classification, exception
  type, fault pc, retired instructions, cycles, or final state) differs
  from the same fault replayed on the per-instruction predecoded
  reference engine.

The cross-replay is the load-bearing check: it turns PR 2's "mid-block
faults flush the retired prefix and repair the pc" contract into a
property verified under thousands of randomized faults.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..keccak.permutation import keccak_f1600
from ..keccak.state import KeccakState
from ..programs.base import KeccakProgram
from ..programs.factory import build_program
from ..sim.exceptions import (
    IllegalInstructionError,
    InjectedFaultError,
    MemoryAccessError,
    SimulationError,
)
from ..sim.processor import SIMDProcessor
from .inject import FaultInjector, FaultSpec
from .selfcheck import _place_states, _read_states

#: Execution engines a campaign exercises.
MODES = ("stepped", "predecoded", "fused")

#: Program variants (ELEN, LMUL) the campaign draws from.
VARIANTS: Dict[str, Tuple[int, int]] = {
    "64-lmul1": (64, 1),
    "64-lmul8": (64, 8),
    "32-lmul8": (32, 8),
}

#: Ample execution budget: a corrupted branch may loop, and the budget
#: turning that into ExecutionLimitExceeded *is* the detection.
_MAX_INSTRUCTIONS = 20_000

_RAISE_EXCEPTIONS = (InjectedFaultError, MemoryAccessError,
                     IllegalInstructionError)


@dataclass(frozen=True)
class FaultTrial:
    """One campaign trial: a fault, an engine, a program variant."""

    index: int
    variant: str
    mode: str
    spec: FaultSpec
    state_seed: int


@dataclass
class TrialResult:
    """Outcome of one trial (plus its reference replay, when taken)."""

    trial: FaultTrial
    classification: str
    context: Dict[str, Any] = field(default_factory=dict)
    detail: str = ""
    silent: bool = False


@dataclass
class CampaignReport:
    """Aggregated campaign outcome."""

    seed: int
    results: List[TrialResult]

    @property
    def counts(self) -> Counter:
        return Counter(r.classification for r in self.results)

    @property
    def silent_divergences(self) -> List[TrialResult]:
        return [r for r in self.results if r.silent]

    @property
    def zero_silent(self) -> bool:
        return not self.silent_divergences

    def summary(self) -> str:
        counts = self.counts
        lines = [
            f"fault campaign: {len(self.results)} fault(s), seed {self.seed}",
            f"  detected:  {counts.get('detected', 0):6d}  "
            "(structured exception with pc/cycle context)",
            f"  corrupted: {counts.get('corrupted', 0):6d}  "
            "(wrong output, caught by golden-model verification)",
            f"  masked:    {counts.get('masked', 0):6d}  "
            "(output still correct)",
            f"  SILENT:    {len(self.silent_divergences):6d}",
        ]
        for result in self.silent_divergences[:10]:
            lines.append(f"    #{result.trial.index} "
                         f"[{result.trial.variant}/{result.trial.mode}] "
                         f"{result.trial.spec.describe()}: {result.detail}")
        return "\n".join(lines)


@dataclass
class _RunOutcome:
    """Raw observables of one faulted run, for cross-engine comparison."""

    exception: Optional[str]
    pc: Optional[int]
    instructions: int
    cycles: int
    states: Optional[List[KeccakState]]
    context: Dict[str, Any]


def _mode_processor(program: KeccakProgram, mode: str) -> SIMDProcessor:
    if mode == "stepped":
        return SIMDProcessor(elen=program.elen, elenum=program.elenum,
                             predecode=False)
    if mode == "predecoded":
        return SIMDProcessor(elen=program.elen, elenum=program.elenum,
                             predecode=True, fuse=False)
    if mode == "fused":
        return SIMDProcessor(elen=program.elen, elenum=program.elenum,
                             predecode=True, fuse=True)
    raise ValueError(f"unknown mode: {mode!r}")


def _execute_faulted(program: KeccakProgram, mode: str, spec: FaultSpec,
                     states: Sequence[KeccakState]) -> _RunOutcome:
    proc = _mode_processor(program, mode)
    _place_states(proc, program, states)
    exception: Optional[SimulationError] = None
    with FaultInjector(proc) as injector:
        injector.arm(spec)
        try:
            proc.run(max_instructions=_MAX_INSTRUCTIONS)
        except SimulationError as exc:
            exception = exc
    if exception is not None:
        return _RunOutcome(
            exception=type(exception).__name__,
            pc=exception.pc,
            instructions=proc.stats.instructions,
            cycles=proc.stats.cycles,
            states=None,
            context=exception.context,
        )
    return _RunOutcome(
        exception=None,
        pc=None,
        instructions=proc.stats.instructions,
        cycles=proc.stats.cycles,
        states=_read_states(proc, program, len(states)),
        context={},
    )


def _compare_outcomes(primary: _RunOutcome,
                      reference: _RunOutcome) -> Optional[str]:
    """Why two engines disagree on the same fault (None if they agree)."""
    if primary.exception != reference.exception:
        return (f"exception {primary.exception} != "
                f"reference {reference.exception}")
    if primary.pc != reference.pc:
        return (f"fault pc {primary.pc} != reference {reference.pc}")
    if primary.instructions != reference.instructions:
        return (f"retired {primary.instructions} != "
                f"reference {reference.instructions}")
    if primary.cycles != reference.cycles:
        return f"cycles {primary.cycles} != reference {reference.cycles}"
    if primary.states != reference.states:
        return "final states differ between engines"
    return None


def _random_spec(rng: random.Random, program: KeccakProgram,
                 assembled_pcs: Sequence[int], vlen_bits: int) -> FaultSpec:
    kind = rng.choice(("vreg-flip", "sreg-flip", "mem-flip",
                       "word-corrupt", "raise"))
    pc = rng.choice(assembled_pcs)
    occurrence = rng.randint(1, 3)
    if kind == "vreg-flip":
        return FaultSpec(kind, pc, occurrence, reg=rng.randrange(32),
                         bit=rng.randrange(vlen_bits))
    if kind == "sreg-flip":
        return FaultSpec(kind, pc, occurrence, reg=rng.randrange(32),
                         bit=rng.randrange(32))
    if kind == "mem-flip":
        base = program.state_base or 0
        return FaultSpec(kind, pc, occurrence,
                         address=base + rng.randrange(4096),
                         bit=rng.randrange(8))
    if kind == "word-corrupt":
        return FaultSpec(kind, pc, occurrence, bit=rng.randrange(32))
    return FaultSpec(kind, pc, occurrence,
                     exception=rng.choice(_RAISE_EXCEPTIONS))


def run_campaign(num_faults: int = 200, seed: int = 0,
                 variants: Sequence[str] = tuple(VARIANTS),
                 modes: Sequence[str] = MODES,
                 crosscheck: bool = True) -> CampaignReport:
    """Inject ``num_faults`` seeded random faults; classify every one.

    Faults rotate over ``variants`` × ``modes``.  With ``crosscheck``
    (the default) every stepped/fused trial is replayed on the
    per-instruction predecoded engine and the outcomes must match
    exactly — classification, exception type, fault pc, retired
    instruction count, cycle counter and final states.
    """
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode: {mode!r}")
    programs: Dict[str, KeccakProgram] = {}
    pcs: Dict[str, List[int]] = {}
    for variant in variants:
        elen, lmul = VARIANTS[variant]
        program = build_program(elen, lmul, elenum=5)
        programs[variant] = program
        pcs[variant] = [inst.address
                        for inst in program.assemble().instructions]

    rng = random.Random(seed)
    results: List[TrialResult] = []
    for index in range(num_faults):
        variant = variants[index % len(variants)]
        mode = modes[(index // len(variants)) % len(modes)]
        program = programs[variant]
        spec = _random_spec(rng, program, pcs[variant],
                            program.elen * program.elenum)
        state_seed = rng.getrandbits(32)
        trial = FaultTrial(index, variant, mode, spec, state_seed)
        results.append(_run_trial(trial, program, crosscheck))
    return CampaignReport(seed=seed, results=results)


def _run_trial(trial: FaultTrial, program: KeccakProgram,
               crosscheck: bool) -> TrialResult:
    state_rng = random.Random(trial.state_seed)
    states = [KeccakState([state_rng.getrandbits(64) for _ in range(25)])]
    try:
        outcome = _execute_faulted(program, trial.mode, trial.spec, states)
    except Exception as exc:  # noqa: BLE001 - a crash is the finding
        return TrialResult(
            trial, "crash", silent=True,
            detail=f"non-simulation error {type(exc).__name__}: {exc}",
        )

    if outcome.exception is not None:
        if outcome.context.get("pc") is None \
                or outcome.context.get("cycle") is None:
            result = TrialResult(
                trial, "undiagnosed", context=outcome.context, silent=True,
                detail=f"{outcome.exception} carried no pc/cycle context",
            )
        else:
            result = TrialResult(trial, "detected", context=outcome.context)
    else:
        golden = [keccak_f1600(s) for s in states]
        if outcome.states == golden:
            result = TrialResult(trial, "masked")
        else:
            result = TrialResult(trial, "corrupted")

    if crosscheck and trial.mode != "predecoded" and not result.silent:
        try:
            reference = _execute_faulted(program, "predecoded", trial.spec,
                                         states)
        except Exception as exc:  # noqa: BLE001
            return TrialResult(
                trial, "crash", silent=True,
                detail=f"reference replay crashed: "
                       f"{type(exc).__name__}: {exc}",
            )
        mismatch = _compare_outcomes(outcome, reference)
        if mismatch is not None:
            result.silent = True
            result.detail = f"diverged from reference engine: {mismatch}"
            result.classification = "engine-divergence"
    return result
