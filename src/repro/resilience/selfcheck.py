"""Differential self-verification: fused vs stepped vs golden model.

Three independent references keep the execution engines honest:

* the **naive stepped decoder** (``predecode=False``) — decode-per-fetch,
  the seed interpreter's reference semantics;
* the **pure-python golden model** —
  :func:`repro.keccak.permutation.keccak_f1600`, validated against the
  NIST vectors by the keccak test suite;
* **hashlib** — CPython's independent SHA-3 for end-to-end digests.

:func:`lockstep_verify` runs the predecoded engine against the naive
decoder *one instruction at a time*, comparing the full architectural
state after every step, and reports the **first divergence** down to the
(pc, register, lane) that disagrees.  :func:`selfcheck_run` compares the
fused engine's final state and counters against stepped execution and the
golden permutation — the cheap whole-run oracle the fault campaign uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import hashlib

from ..keccak.permutation import keccak_f1600
from ..keccak.state import KeccakState
from ..programs import layout
from ..programs.base import KeccakProgram
from ..sim.exceptions import ProcessorHalted, SimulationError
from ..sim.processor import SIMDProcessor
from ..sim.vector_regfile import NUM_VECTOR_REGISTERS


@dataclass(frozen=True)
class Divergence:
    """The first point where two executions disagree."""

    instruction_index: int
    pc: int
    #: What diverged: "pc", "halted", "cycles", "scalar", "vreg",
    #: "memory", "exception", "state", "digest".
    kind: str
    #: Register number for "scalar"/"vreg" divergences.
    register: Optional[int] = None
    #: Lane (SEW-wide element index) for "vreg" divergences.
    lane: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = f"instruction {self.instruction_index} at pc={self.pc:#x}"
        if self.kind == "vreg":
            return (f"{where}: v{self.register} lane {self.lane} "
                    f"diverged ({self.detail})")
        if self.kind == "scalar":
            return f"{where}: x{self.register} diverged ({self.detail})"
        return f"{where}: {self.kind} diverged ({self.detail})"


@dataclass
class SelfCheckReport:
    """Outcome of one differential check."""

    ok: bool
    divergences: List[Divergence] = field(default_factory=list)
    checked_instructions: int = 0

    def summary(self) -> str:
        if self.ok:
            return (f"self-check ok "
                    f"({self.checked_instructions} instruction(s) compared)")
        return "self-check FAILED: " + "; ".join(
            str(d) for d in self.divergences
        )


def _first_vreg_divergence(index: int, pc: int,
                           a: SIMDProcessor,
                           b: SIMDProcessor) -> Optional[Divergence]:
    sew = a.elen
    for reg in range(NUM_VECTOR_REGISTERS):
        va, vb = a.vector.regfile.read_raw(reg), b.vector.regfile.read_raw(reg)
        if va == vb:
            continue
        mask = (1 << sew) - 1
        lane = 0
        while va & mask == vb & mask:
            va >>= sew
            vb >>= sew
            lane += 1
        return Divergence(
            index, pc, "vreg", register=reg, lane=lane,
            detail=f"{va & mask:#x} != {vb & mask:#x}",
        )
    return None


def _compare_architectural(index: int, pc: int,
                           a: SIMDProcessor,
                           b: SIMDProcessor) -> Optional[Divergence]:
    """First state difference between two processors, or None."""
    if a.scalar.pc != b.scalar.pc:
        return Divergence(index, pc, "pc",
                          detail=f"{a.scalar.pc:#x} != {b.scalar.pc:#x}")
    if a.halted != b.halted:
        return Divergence(index, pc, "halted",
                          detail=f"{a.halted} != {b.halted}")
    if a.stats.cycles != b.stats.cycles:
        return Divergence(
            index, pc, "cycles",
            detail=f"{a.stats.cycles} != {b.stats.cycles}")
    for reg in range(32):
        ra, rb = a.scalar.read_register(reg), b.scalar.read_register(reg)
        if ra != rb:
            return Divergence(index, pc, "scalar", register=reg,
                              detail=f"{ra:#x} != {rb:#x}")
    return _first_vreg_divergence(index, pc, a, b)


def _make_processor(program: KeccakProgram, *, predecode: bool,
                    fuse: bool) -> SIMDProcessor:
    return SIMDProcessor(elen=program.elen, elenum=program.elenum,
                         predecode=predecode, fuse=fuse)


def _place_states(proc: SIMDProcessor, program: KeccakProgram,
                  states: Sequence[KeccakState]) -> None:
    proc.load_program(program.assemble())
    if not states:
        return
    if program.state_base is not None:
        image = (layout.memory_image64(states, program.elenum)
                 if program.elen == 64
                 else layout.memory_image32(states, program.elenum))
        proc.memory.store_bytes(program.state_base, image)
    elif program.elen == 64:
        layout.load_states_regfile64(proc.vector.regfile, states)
    else:
        layout.load_states_regfile32(proc.vector.regfile, states)


def _read_states(proc: SIMDProcessor, program: KeccakProgram,
                 count: int) -> List[KeccakState]:
    if count == 0:
        return []
    if program.state_base is not None:
        if program.elen == 64:
            size = 5 * program.elenum * 8
            image = proc.memory.load_bytes(program.state_base, size)
            return layout.parse_memory_image64(image, program.elenum, count)
        size = 2 * 5 * program.elenum * 4
        image = proc.memory.load_bytes(program.state_base, size)
        return layout.parse_memory_image32(image, program.elenum, count)
    if program.elen == 64:
        return layout.read_states_regfile64(proc.vector.regfile, count)
    return layout.read_states_regfile32(proc.vector.regfile, count)


def lockstep_verify(program: KeccakProgram,
                    states: Sequence[KeccakState],
                    max_instructions: int = 200_000) -> SelfCheckReport:
    """Step the predecoded engine against the naive decoder in lockstep.

    After every instruction the two processors' pc, halt flag, cycle
    counter, all 32 scalar registers and all 32 vector registers must be
    identical; the first mismatch is reported as a (pc, register, lane)
    :class:`Divergence`.  Final data memory is compared once at the end
    (comparing a megabyte per step would swamp the signal).
    """
    fast = _make_processor(program, predecode=True, fuse=False)
    slow = _make_processor(program, predecode=False, fuse=False)
    _place_states(fast, program, states)
    _place_states(slow, program, states)

    index = 0
    while not (fast.halted or slow.halted):
        if index >= max_instructions:
            return SelfCheckReport(
                ok=False, checked_instructions=index,
                divergences=[Divergence(index, fast.scalar.pc, "limit",
                                        detail="lockstep budget exhausted")],
            )
        pc = fast.scalar.pc
        exc_fast = exc_slow = None
        try:
            fast.step()
        except ProcessorHalted:
            raise
        except SimulationError as exc:
            exc_fast = exc
        try:
            slow.step()
        except ProcessorHalted:
            raise
        except SimulationError as exc:
            exc_slow = exc
        if (exc_fast is None) != (exc_slow is None) or (
                exc_fast is not None
                and type(exc_fast) is not type(exc_slow)):
            return SelfCheckReport(
                ok=False, checked_instructions=index,
                divergences=[Divergence(
                    index, pc, "exception",
                    detail=f"{type(exc_fast).__name__ if exc_fast else None}"
                           f" != "
                           f"{type(exc_slow).__name__ if exc_slow else None}",
                )],
            )
        divergence = _compare_architectural(index, pc, fast, slow)
        if divergence is not None:
            return SelfCheckReport(ok=False, checked_instructions=index,
                                   divergences=[divergence])
        if exc_fast is not None:
            break  # both faulted identically with matching state
        index += 1

    if fast.memory.load_bytes(0, fast.memory.size) != \
            slow.memory.load_bytes(0, slow.memory.size):
        return SelfCheckReport(
            ok=False, checked_instructions=index,
            divergences=[Divergence(index, fast.scalar.pc, "memory",
                                    detail="final data memory differs")],
        )
    return SelfCheckReport(ok=True, checked_instructions=index)


def selfcheck_run(program: KeccakProgram,
                  states: Sequence[KeccakState],
                  max_instructions: int = 10_000_000) -> SelfCheckReport:
    """Whole-run oracle: fused vs stepped execution vs the golden model.

    Runs the program twice — superblock-fused and per-instruction
    stepped — and requires identical final states, cycle and instruction
    counters, then checks both against :func:`keccak_f1600` applied to
    the input states.  (For reduced-round programs the golden comparison
    is skipped; the engines must still agree with each other.)
    """
    fused = _make_processor(program, predecode=True, fuse=True)
    stepped = _make_processor(program, predecode=False, fuse=False)
    divergences: List[Divergence] = []

    results = []
    for proc in (fused, stepped):
        _place_states(proc, program, states)
        exc: Optional[SimulationError] = None
        try:
            proc.run(max_instructions=max_instructions)
        except SimulationError as err:
            exc = err
        results.append(exc)

    exc_fused, exc_stepped = results
    index = fused.stats.instructions
    if (exc_fused is None) != (exc_stepped is None) or (
            exc_fused is not None
            and type(exc_fused) is not type(exc_stepped)):
        divergences.append(Divergence(
            index, fused.scalar.pc, "exception",
            detail=f"fused {type(exc_fused).__name__ if exc_fused else None}"
                   f" != stepped "
                   f"{type(exc_stepped).__name__ if exc_stepped else None}",
        ))
    else:
        divergence = _compare_architectural(index, fused.scalar.pc,
                                            fused, stepped)
        if divergence is not None:
            divergences.append(divergence)
        elif exc_fused is None and states and program.num_rounds == 24:
            out = _read_states(fused, program, len(states))
            golden = [keccak_f1600(s) for s in states]
            for lane_index, (got, want) in enumerate(zip(out, golden)):
                if got != want:
                    divergences.append(Divergence(
                        index, fused.scalar.pc, "state",
                        lane=lane_index,
                        detail="final state differs from keccak_f1600",
                    ))
                    break
    return SelfCheckReport(ok=not divergences, divergences=divergences,
                           checked_instructions=index)


def crosscheck_digest(message: bytes) -> SelfCheckReport:
    """End-to-end digest oracle: simulator vs hashlib vs pure python.

    Hashes ``message`` with SHA3-256 on the simulated processor, with
    CPython's ``hashlib`` and with the repository's pure-python sponge;
    all three must agree byte for byte.
    """
    from ..keccak.hashes import sha3_256
    from ..programs.sha3_driver import simulated_sha3_256

    simulated = simulated_sha3_256(message)
    reference = hashlib.sha3_256(message).digest()
    pure = sha3_256(message)
    divergences = []
    if simulated != reference:
        divergences.append(Divergence(
            0, 0, "digest", detail="simulator != hashlib"))
    if pure != reference:
        divergences.append(Divergence(
            0, 0, "digest", detail="pure python != hashlib"))
    return SelfCheckReport(ok=not divergences, divergences=divergences)
