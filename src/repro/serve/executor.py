"""Batch executors: coalesced requests → lock-step simulator groups.

The daemon's batcher hands an executor one coalesced batch of
``(message, deadline)`` items per algorithm.  The executor owns the
step from *requests* to *multi-state simulator work*:

* Items are sorted by deadline and cut into lock-step groups of the
  engine's width (SN states for the cycle-accurate engines, the SoA
  batch width for ``soa``, a fixed group for whole-message engines) so
  the most urgent work dispatches first.
* **Deadlines propagate into dispatch**: a group whose items have all
  expired is shed before it reaches a worker, and already-expired
  items are dropped from a group at the moment it dispatches — a
  saturated pool therefore sheds exactly the work that can no longer
  meet its SLO instead of burning workers on it.
* The :class:`PooledExecutor` drives the persistent
  :class:`~repro.parallel_exec.pool.WorkerPool` directly (one dispatch
  loop per batch, many groups in flight at once) and reuses the PR 3
  hardening: a worker that fails ``breaker_threshold`` groups
  consecutively trips its circuit breaker and is **rolling-restarted**
  (gracefully replaced, one worker at a time) instead of collapsing
  the pool; crashes and timeouts retry the group on another worker.
  Large batches ride the PR 7 zero-copy shm arenas; small ones take
  the pickle queues.

Results are ``(outcome, digest)`` pairs aligned with the input items:
``("ok", digest)``, ``("deadline_exceeded", None)`` for shed work, or
``("error", None)`` when retries are exhausted.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability import metrics as _metrics
from ..parallel_exec import shm as _shm
from ..parallel_exec.hardening import WorkerLedger
from ..parallel_exec.pool import WorkerPool
from ..parallel_exec.scheduler import _collect_worker_metrics
from ..programs.batch_driver import (
    _HASH_SHM_TASK_KIND,
    _HASH_TASK_KIND,
    _TREE_ALGORITHMS,
    _cached_permutation,
    digest_size as _digest_size,
    hash_messages,
)
from ..sim import engines as _engines

#: Per-item outcomes (mirrored by the daemon's HTTP status mapping).
OK = "ok"
DEADLINE_EXCEEDED = "deadline_exceeded"
ERROR = "error"

#: One batch item: the message and its absolute monotonic deadline
#: (None = no deadline).
Item = Tuple[bytes, Optional[float]]

#: One per-item result: (outcome, digest-or-None).
ItemResult = Tuple[str, Optional[bytes]]

#: Lock-step group size for whole-message engines (``reference``): they
#: have no architectural width, so groups just amortize dispatch IPC.
_DIGEST_BATCH_GROUP = 32

#: How long one poll of the pool's result queue blocks.
_POLL_INTERVAL = 0.02

_RESTARTS = _metrics.registry().counter(
    "serve_worker_restarts_total",
    "Pool workers replaced by the serving executor", ("reason",))
_SHED = _metrics.registry().counter(
    "serve_shed_items_total",
    "Items shed before dispatch because their deadline expired")


def _lane_width(arch: Tuple[int, int, int], engine: str,
                algorithm: str = "sha3_256") -> int:
    """The engine's lock-step group size for this architecture.

    Tree algorithms (``k12``, ``parallelhash128/256``) are whole-message
    work units — their leaf batching happens inside the worker — so
    their groups only amortize dispatch IPC, like digest-batch engines.
    """
    if algorithm in _TREE_ALGORITHMS:
        return _DIGEST_BATCH_GROUP
    spec = _engines.maybe_get(engine)
    if spec is not None and spec.digest_batch is not None:
        return _DIGEST_BATCH_GROUP
    return _cached_permutation(arch, engine).max_states


def _plan_groups(items: Sequence[Item], width: int) -> List[List[int]]:
    """Item indices cut into lock-step groups, most urgent first."""
    order = sorted(
        range(len(items)),
        key=lambda i: (items[i][1] is None,
                       items[i][1] if items[i][1] is not None else 0.0, i))
    return [order[k:k + width] for k in range(0, len(order), width)]


def _split_expired(items: Sequence[Item], group: Sequence[int],
                   now: float) -> Tuple[List[int], List[int]]:
    """Partition a group into (live, expired) at dispatch time."""
    live: List[int] = []
    expired: List[int] = []
    for index in group:
        deadline = items[index][1]
        (expired if deadline is not None and deadline <= now
         else live).append(index)
    return live, expired


class InlineExecutor:
    """Serial in-process execution: the reference the pool is tested
    against, and the right choice for single-core deployments."""

    def __init__(self, engine: str = "auto",
                 arch: Tuple[int, int, int] = (64, 8, 30)) -> None:
        self.engine = _engines.validate(engine)
        self.arch = tuple(arch)
        self.workers = 0
        self._width = _lane_width(self.arch, self.engine)

    def hash_batch(self, algorithm: str, length: int,
                   items: Sequence[Item]) -> List[ItemResult]:
        width = _lane_width(self.arch, self.engine, algorithm)
        results: List[Optional[ItemResult]] = [None] * len(items)
        for group in _plan_groups(items, width):
            live, expired = _split_expired(items, group, time.monotonic())
            for index in expired:
                results[index] = (DEADLINE_EXCEEDED, None)
            if expired and _metrics.ARMED:
                _SHED.inc(len(expired))
            if not live:
                continue
            try:
                digests = hash_messages(
                    algorithm, length, self.arch, self.engine,
                    [items[i][0] for i in live])
            except Exception:
                for index in live:
                    results[index] = (ERROR, None)
                continue
            for index, digest in zip(live, digests):
                results[index] = (OK, digest)
        return [r if r is not None else (ERROR, None) for r in results]

    def restart_workers(self, reason: str = "rolling") -> int:
        return 0

    def close(self) -> None:
        pass


class _Group:
    """One dispatchable unit: original item indices + its shm span."""

    __slots__ = ("indices", "pos_start", "pos_stop", "attempts")

    def __init__(self, indices: List[int], pos_start: int,
                 pos_stop: int) -> None:
        self.indices = indices
        self.pos_start = pos_start
        self.pos_stop = pos_stop
        self.attempts = 1


class PooledExecutor:
    """Batch execution over a *persistent* worker pool.

    Unlike :func:`repro.run_many` (which builds a pool per call), the
    serving executor keeps its workers alive across batches — warm
    Sessions, predecoded programs and compiled kernels survive — and
    recovers in place: crashes/timeouts retry on another worker,
    breaker trips rolling-restart the offending worker, and
    :meth:`restart_workers` cycles the whole pool one worker at a time
    without dropping a batch (the batch lock serializes with it).
    """

    def __init__(self, workers: int, engine: str = "auto",
                 arch: Tuple[int, int, int] = (64, 8, 30),
                 max_retries: int = 2,
                 breaker_threshold: int = 3,
                 group_timeout: float = 30.0,
                 transport: str = "auto") -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(f"unknown transport: {transport!r}")
        self.engine = _engines.validate(engine)
        self.arch = tuple(arch)
        self.workers = workers
        self.max_retries = max_retries
        self.group_timeout = group_timeout
        self.transport = transport
        self.restarts = 0
        self._width = _lane_width(self.arch, self.engine)
        # Pre-compile in the parent so forked workers warm-start from
        # the shared on-disk kernel cache (same as run_many's parents).
        spec = _engines.maybe_get(self.engine)
        if spec is None or spec.digest_batch is None:
            _cached_permutation(self.arch, self.engine).precompile()
        self._ledger = WorkerLedger(breaker_threshold)
        self._lock = threading.Lock()
        self._pool: Optional[WorkerPool] = WorkerPool(workers)

    # -- lifecycle -----------------------------------------------------------

    def restart_workers(self, reason: str = "rolling") -> int:
        """Gracefully replace every worker, one at a time.

        Serialized against :meth:`hash_batch`, so a restart never races
        a dispatch loop; each replacement drains the worker via the
        sentinel before a fresh one takes its slot (pool size is
        constant throughout — no collapse window).
        """
        with self._lock:
            if self._pool is None:
                return 0
            for worker_id in list(self._pool.workers):
                self._ledger.forget(worker_id)
            replaced = self._pool.rolling_restart()
            self.restarts += replaced
            if replaced and _metrics.ARMED:
                _RESTARTS.inc(replaced, reason=reason)
            return replaced

    def close(self) -> None:
        with self._lock:
            if self._pool is None:
                return
            if _metrics.ARMED:
                _collect_worker_metrics(self._pool)
            self._pool.shutdown()
            self._pool = None

    # -- batch execution -----------------------------------------------------

    def hash_batch(self, algorithm: str, length: int,
                   items: Sequence[Item]) -> List[ItemResult]:
        with self._lock:
            if self._pool is None:
                raise RuntimeError("executor is closed")
            if not items:
                return []
            return self._run_batch(algorithm, length, items)

    def _run_batch(self, algorithm: str, length: int,
                   items: Sequence[Item]) -> List[ItemResult]:
        digest_size = _digest_size(algorithm, length)
        total_bytes = sum(len(message) for message, _ in items)
        mode = _shm.choose_transport(self.transport, total_bytes,
                                     self.workers)
        groups = _plan_groups(items, _lane_width(self.arch, self.engine,
                                                 algorithm))
        # The shm arena holds messages in deadline order, so a group is
        # a contiguous span of packed positions.
        order = [index for group in groups for index in group]
        arena = None
        if mode == "shm":
            sizes = [len(items[i][0]) for i in order]
            arena = _shm.arena_pool().acquire(
                _shm.required_size(sizes, digest_size))
            arena.pack([items[i][0] for i in order], digest_size)
        try:
            return self._drive(algorithm, length, items, groups, arena,
                               digest_size)
        finally:
            if arena is not None:
                _shm.arena_pool().release(arena)

    def _dispatch_payload(self, algorithm: str, length: int,
                          items: Sequence[Item], group: _Group,
                          live: List[int], arena) -> Tuple[str, object]:
        if arena is not None:
            return (_HASH_SHM_TASK_KIND,
                    (arena.name, group.pos_start, group.pos_stop,
                     algorithm, length, self.arch, self.engine))
        # Pickle transport dispatches only the still-live messages.
        return (_HASH_TASK_KIND,
                (algorithm, length, self.arch,
                 [items[i][0] for i in live], self.engine))

    def _collect(self, group: _Group, live: List[int], arena,
                 payload) -> List[bytes]:
        if arena is not None:
            digests = arena.read_digests(group.pos_start, group.pos_stop)
            by_index = dict(zip(group.indices, digests))
            return [by_index[i] for i in live]
        return list(payload)

    def _replace_worker(self, worker, reason: str,
                        graceful: bool) -> None:
        self._ledger.forget(worker.worker_id)
        self._pool.replace(worker, graceful=graceful)
        self.restarts += 1
        if _metrics.ARMED:
            _RESTARTS.inc(reason=reason)

    def _drive(self, algorithm: str, length: int, items: Sequence[Item],
               planned: List[List[int]], arena,
               digest_size: int) -> List[ItemResult]:
        pool = self._pool
        results: List[Optional[ItemResult]] = [None] * len(items)
        pending: deque = deque()
        position = 0
        for group_indices in planned:
            pending.append(_Group(group_indices, position,
                                  position + len(group_indices)))
            position += len(group_indices)
        #: dispatch id -> (_Group, live indices); fresh per dispatch so
        #: a late result from a replaced worker still resolves.
        in_flight: Dict[int, Tuple[_Group, List[int]]] = {}
        next_id = 0

        def shed(indices: List[int]) -> None:
            for index in indices:
                results[index] = (DEADLINE_EXCEEDED, None)
            if indices and _metrics.ARMED:
                _SHED.inc(len(indices))

        def fail(indices: List[int]) -> None:
            for index in indices:
                results[index] = (ERROR, None)

        while pending or in_flight:
            now = time.monotonic()
            for worker in list(pool.workers.values()):
                if not worker.busy and not worker.alive:
                    # Died idle (e.g. OOM): keep the pool at size.
                    self._replace_worker(worker, "crashed", graceful=False)

            for worker in pool.idle_workers():
                if not pending:
                    break
                group = pending.popleft()
                now = time.monotonic()
                live, expired = _split_expired(items, group.indices, now)
                shed(expired)
                if not live:
                    continue  # fully shed before reaching a worker
                deadlines = [items[i][1] for i in live
                             if items[i][1] is not None]
                timeout = self.group_timeout
                if deadlines:
                    timeout = min(timeout, max(deadlines) - now)
                kind, payload = self._dispatch_payload(
                    algorithm, length, items, group, live, arena)
                sid = next_id
                next_id += 1
                in_flight[sid] = (group, live)
                worker.dispatch(sid, kind, payload, group.attempts,
                                max(timeout, _POLL_INTERVAL))

            message = pool.poll_result(_POLL_INTERVAL)
            if message is not None:
                worker_id, sid, ok, payload = message
                now = time.monotonic()
                worker = pool.workers.get(worker_id)
                if worker is not None:
                    worker.heard_from(now)
                    if worker.task is not None and worker.task[0] == sid:
                        worker.finish()
                entry = in_flight.pop(sid, None)
                if entry is None:
                    continue  # stale: already requeued or resolved
                group, live = entry
                if ok:
                    self._ledger.record_success(worker_id)
                    for index, digest in zip(
                            live, self._collect(group, live, arena,
                                                payload)):
                        results[index] = (OK, digest)
                    continue
                # Task exception reported by a surviving worker.
                if self._ledger.record_failure(worker_id) \
                        and worker is not None:
                    # Breaker trip: rolling restart of this one worker,
                    # not the pool (it is idle — graceful is safe).
                    self._replace_worker(worker, "breaker", graceful=True)
                group.attempts += 1
                if group.attempts > self.max_retries + 1:
                    fail(live)
                else:
                    pending.appendleft(group)
                continue

            now = time.monotonic()
            for worker in pool.busy_workers():
                sid = worker.task[0]
                entry = in_flight.get(sid)
                if entry is None:
                    worker.finish()
                    continue
                crashed = not worker.alive
                if not crashed and not worker.timed_out(now):
                    continue
                group, live = entry
                del in_flight[sid]
                self._replace_worker(
                    worker, "crashed" if crashed else "timeout",
                    graceful=False)
                group.attempts += 1
                if group.attempts > self.max_retries + 1:
                    fail(live)
                else:
                    pending.appendleft(group)

        return [r if r is not None else (ERROR, None) for r in results]
