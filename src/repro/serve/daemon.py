"""The ``repro serve`` daemon: asyncio front end over the executors.

Request lifecycle (each gate rejects *explicitly* — nothing is ever
queued unboundedly)::

    connection → parse (400 on garbage)
      → draining?            → 503 "draining"
      → token bucket empty?  → 429 "overloaded"
      → bounded queue full?  → 429 "overloaded"
      → accepted: coalesced by the batcher (window/size), grouped by
        (algorithm, length), executed on the executor with the request
        deadline attached
      → resolved: 200 digest | 504 "deadline_exceeded" | 500 "error"

Drain state machine (SIGTERM/SIGINT)::

    serving → draining: stop accepting (close listeners, 503 new
              requests on live connections)
            → flush: wait until every accepted request has been
              *answered* (bounded by ``drain_grace``)
            → checkpoint: atomically write the state file (outcome
              totals + a metrics snapshot)
            → stopped: shut the executor down (pool drained), exit 0

Batching: the coalescing window (``batch_window``) trades a bounded
amount of latency for multi-state occupancy — requests arriving within
the window share one lock-step dispatch, which is exactly the paper's
N-messages-for-the-price-of-one story applied to live traffic.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..observability import metrics as _metrics
from ..observability import timeline as _timeline
from . import http as _http
from .admission import TokenBucket
from .executor import (
    DEADLINE_EXCEEDED,
    ERROR,
    OK,
    InlineExecutor,
    PooledExecutor,
)

__all__ = ["ServeConfig", "HashServer", "OVERLOADED", "DRAINING"]

#: Rejection outcomes (the executor owns OK/DEADLINE_EXCEEDED/ERROR).
OVERLOADED = "overloaded"
DRAINING = "draining"

#: Served algorithms: the flat FIPS 202 pair plus the tree-hashing XOFs
#: (whose leaf batching runs inside the executor's workers).  All XOFs
#: accept a ``?length=`` query parameter; sha3_256 is fixed at 32.
_ALGORITHMS = ("sha3_256", "shake128", "shake256", "k12",
               "parallelhash128", "parallelhash256")

#: Default output bytes per algorithm when no ``?length=`` is given.
_DEFAULT_LENGTHS = {"sha3_256": 32, "shake128": 32, "shake256": 32,
                    "k12": 32, "parallelhash128": 32,
                    "parallelhash256": 64}

_STATUS = {OK: 200, DEADLINE_EXCEEDED: 504, ERROR: 500,
           OVERLOADED: 429, DRAINING: 503}

_REQUESTS = _metrics.registry().counter(
    "serve_requests_total",
    "Requests by final outcome", ("outcome",))
_QUEUE_DEPTH = _metrics.registry().gauge(
    "serve_queue_depth",
    "Accepted requests waiting for a batch slot")
_LATENCY = _metrics.registry().histogram(
    "serve_request_latency_seconds",
    "Accept-to-answer latency of served requests", ("algorithm",))
_BATCH_SIZE = _metrics.registry().histogram(
    "serve_batch_size",
    "Requests coalesced per executor dispatch",
    buckets=_metrics.COUNT_BUCKETS)

#: Batcher shutdown sentinel (queued behind the last real request).
_STOP = object()


@dataclass
class ServeConfig:
    """Everything the daemon needs; CLI flags map onto these fields."""

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    #: 0 = inline execution; >= 1 = a persistent worker pool.
    workers: int = 0
    engine: str = "auto"
    elen: int = 64
    lmul: int = 8
    elenum: int = 30
    #: Bounded accept queue — the backlog gate behind the token bucket.
    max_queue: int = 256
    #: Token-bucket admission: requests/second (0 = unlimited) + burst.
    rate: float = 0.0
    burst: float = 64.0
    #: Coalescing window (seconds) and per-dispatch size cap.
    batch_window: float = 0.002
    max_batch: int = 64
    #: Deadline applied when a request carries no ``X-Deadline-Ms``.
    default_deadline: float = 5.0
    max_body: int = 1 << 20
    max_length: int = 4096
    #: Drain checkpoint (atomic JSON) written on graceful shutdown.
    state_path: Optional[str] = None
    drain_grace: float = 30.0
    #: Executor dispatches allowed in flight at once.
    max_inflight_batches: int = 2
    #: Arm metrics + start a timeline for the daemon's lifetime.
    observability: bool = True
    transport: str = "auto"

    def arch(self) -> Tuple[int, int, int]:
        return (self.elen, self.lmul, self.elenum)


class _Pending:
    """One accepted request waiting for its batch to resolve."""

    __slots__ = ("algorithm", "length", "message", "deadline",
                 "accepted_at", "future")

    def __init__(self, algorithm: str, length: int, message: bytes,
                 deadline: Optional[float], accepted_at: float,
                 future: "asyncio.Future") -> None:
        self.algorithm = algorithm
        self.length = length
        self.message = message
        self.deadline = deadline
        self.accepted_at = accepted_at
        self.future = future


class HashServer:
    """The daemon: listeners, admission, batcher, drain.

    Tests may inject an ``executor`` double; by default one is built
    from the config (inline for ``workers=0``, pooled otherwise).
    """

    def __init__(self, config: ServeConfig, executor=None) -> None:
        if config.socket_path is None and config.host is None:
            raise ValueError("serve needs a unix socket path or a host")
        self.config = config
        if executor is None:
            if config.workers >= 1:
                executor = PooledExecutor(
                    config.workers, engine=config.engine,
                    arch=config.arch(), transport=config.transport)
            else:
                executor = InlineExecutor(config.engine, config.arch())
        self.executor = executor
        self.draining = False
        self.outcomes: Dict[str, int] = {}
        self._bucket = TokenBucket(config.rate, config.burst)
        self._pending = 0
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._group_tasks: set = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._sem: Optional[asyncio.Semaphore] = None
        self._prev_armed = False
        self._own_timeline = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind listeners and start the batcher (idempotence not needed:
        one server, one start)."""
        if self.config.observability:
            self._prev_armed = _metrics.ARMED
            _metrics.arm()
            if _timeline.ACTIVE is None:
                _timeline.start()
                self._own_timeline = True
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._sem = asyncio.Semaphore(self.config.max_inflight_batches)
        self._batcher = loop.create_task(self._batch_loop())
        # The listen backlog must cover a full connection burst: asyncio's
        # default (100) silently refuses connect #101 of an open-loop
        # spike even though admission control would have answered it with
        # an honest 429.  Size it to the whole admission pipeline.
        backlog = max(128, self.config.max_queue * 2)
        if self.config.socket_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_conn, path=self.config.socket_path,
                backlog=backlog))
        if self.config.host is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_conn, host=self.config.host,
                port=self.config.port, backlog=backlog))

    def addresses(self) -> List[str]:
        """Bound endpoints, TCP ports resolved (for logs and tests)."""
        out: List[str] = []
        if self.config.socket_path is not None:
            out.append(f"unix:{self.config.socket_path}")
        for server in self._servers:
            for sock in server.sockets or []:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    out.append(f"http://{name[0]}:{name[1]}")
        return out

    @property
    def tcp_port(self) -> Optional[int]:
        for server in self._servers:
            for sock in server.sockets or []:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[1]
        return None

    async def run(self) -> None:
        """Start, serve until SIGTERM/SIGINT, drain, return (exit 0)."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed: List[signal.Signals] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(f"repro serve: listening on {', '.join(self.addresses())}",
              flush=True)
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.drain()

    async def drain(self) -> None:
        """The graceful path: stop accepting, flush, checkpoint, stop."""
        if self.draining:
            return
        self.draining = True
        for server in self._servers:
            server.close()
        # Flush: every *accepted* request must be answered.  New arrivals
        # on live keep-alive connections see 503 and don't join the count.
        grace_end = time.monotonic() + self.config.drain_grace
        while self._pending > 0 and time.monotonic() < grace_end:
            await asyncio.sleep(0.01)
        if self._batcher is not None:
            try:
                self._queue.put_nowait(_STOP)
            except asyncio.QueueFull:  # grace expired with a full queue
                self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:  # pragma: no cover - forced
                pass
        if self._group_tasks:
            await asyncio.gather(*list(self._group_tasks),
                                 return_exceptions=True)
        self._write_state()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.executor.close)
        if self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        if self.config.observability:
            if self._own_timeline:
                _timeline.stop()
            if not self._prev_armed:
                _metrics.disarm()

    def _write_state(self) -> None:
        """Atomically checkpoint outcome totals + metrics on drain."""
        if self.config.state_path is None:
            return
        state = {
            "drained_at": time.time(),
            "pending_at_exit": self._pending,
            "outcomes": dict(sorted(self.outcomes.items())),
            "metrics": _metrics.registry().snapshot()
            if self.config.observability else {},
        }
        tmp = f"{self.config.state_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.config.state_path)

    # -- request path --------------------------------------------------------

    def _count(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if _metrics.ARMED:
            _REQUESTS.inc(outcome=outcome)

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _http.read_request(
                        reader, self.config.max_body)
                except _http.ProtocolError as exc:
                    _http.write_response(
                        writer, 400, f"bad request: {exc}\n".encode(),
                        keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = await self._dispatch(request, writer)
                if request.headers.get("connection", "").lower() \
                        == "close":
                    keep = False
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, BrokenPipeError):
            pass  # peer vanished: nothing left to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: "_http.Request",
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        method, path = request.method, request.path
        if path.startswith("/hash/") and method == "POST":
            return await self._handle_hash(request, writer)
        if method == "GET" and path == "/healthz":
            if self.draining:
                _http.write_response(writer, 503, b"draining\n")
            else:
                _http.write_response(writer, 200, b"ok\n")
            return True
        if method == "GET" and path == "/metrics":
            body = _metrics.render_prometheus(
                _metrics.registry().snapshot()).encode()
            _http.write_response(writer, 200, body,
                                 "text/plain; version=0.0.4")
            return True
        if method == "GET" and path == "/debug/timeline":
            active = _timeline.ACTIVE
            payload = (active.to_dict() if active is not None
                       else {"traceEvents": []})
            _http.write_response(writer, 200,
                                 json.dumps(payload).encode(),
                                 "application/json")
            return True
        if method == "POST" and path == "/admin/rolling-restart":
            loop = asyncio.get_running_loop()
            replaced = await loop.run_in_executor(
                None, self.executor.restart_workers)
            _http.write_response(writer, 200,
                                 f"restarted {replaced}\n".encode())
            return True
        _http.write_response(writer, 404, b"not found\n",
                             keep_alive=False)
        return False

    def _parse_hash(self, request: "_http.Request"
                    ) -> Tuple[str, int, Optional[float]]:
        """(algorithm, output length, absolute deadline) or ValueError."""
        algorithm = request.path[len("/hash/"):]
        if algorithm not in _ALGORITHMS:
            raise LookupError(f"unknown algorithm: {algorithm!r}")
        length = _DEFAULT_LENGTHS[algorithm]
        if algorithm != "sha3_256":
            text = request.query_params().get("length", str(length))
            try:
                length = int(text)
            except ValueError:
                raise ValueError(f"bad length: {text!r}")
            if not 1 <= length <= self.config.max_length:
                raise ValueError(
                    f"length {length} outside 1..{self.config.max_length}")
        deadline_ms = request.headers.get("x-deadline-ms")
        if deadline_ms is not None:
            try:
                budget = float(deadline_ms) / 1000.0
            except ValueError:
                raise ValueError(f"bad x-deadline-ms: {deadline_ms!r}")
            # An explicit non-positive budget is an *expired* deadline,
            # not an unlimited one — the request is shed, never run.
            deadline = time.monotonic() + max(budget, 0.0)
        elif self.config.default_deadline > 0:
            deadline = time.monotonic() + self.config.default_deadline
        else:
            deadline = None
        return algorithm, length, deadline

    async def _handle_hash(self, request: "_http.Request",
                           writer: asyncio.StreamWriter) -> bool:
        if self.draining:
            self._count(DRAINING)
            _http.write_response(writer, 503, b"draining\n",
                                 keep_alive=False)
            return False
        try:
            algorithm, length, deadline = self._parse_hash(request)
        except LookupError as exc:
            _http.write_response(writer, 404, f"{exc}\n".encode())
            return True
        except ValueError as exc:
            _http.write_response(writer, 400, f"{exc}\n".encode())
            return True
        if not self._bucket.try_acquire():
            self._count(OVERLOADED)
            _http.write_response(writer, 429, b"overloaded\n")
            return True
        loop = asyncio.get_running_loop()
        pending = _Pending(algorithm, length, request.body, deadline,
                           time.monotonic(), loop.create_future())
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self._count(OVERLOADED)
            _http.write_response(writer, 429, b"overloaded\n")
            return True
        self._pending += 1
        if _metrics.ARMED:
            _QUEUE_DEPTH.set(self._queue.qsize())
        outcome, digest = await pending.future
        if outcome == OK:
            _http.write_response(writer, 200, digest.hex().encode())
        else:
            _http.write_response(writer, _STATUS.get(outcome, 500),
                                 f"{outcome}\n".encode())
        await writer.drain()
        # Answered on the wire — only now does it leave the drain count.
        self._pending -= 1
        return True

    # -- batching ------------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Coalesce accepted requests into executor dispatches."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            batch: List[_Pending] = [item]
            window_end = time.monotonic() + self.config.batch_window
            stop_after = False
            while len(batch) < self.config.max_batch:
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  remaining)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stop_after = True
                    break
                batch.append(item)
            if _metrics.ARMED:
                _QUEUE_DEPTH.set(self._queue.qsize())
            groups: Dict[Tuple[str, int], List[_Pending]] = {}
            for pending in batch:
                groups.setdefault((pending.algorithm, pending.length),
                                  []).append(pending)
            for (algorithm, length), group in groups.items():
                await self._sem.acquire()
                task = loop.create_task(
                    self._run_group(algorithm, length, group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)
            if stop_after:
                return

    async def _run_group(self, algorithm: str, length: int,
                         group: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        try:
            items = [(p.message, p.deadline) for p in group]
            if _metrics.ARMED:
                _BATCH_SIZE.observe(len(items))
            try:
                results = await loop.run_in_executor(
                    None, self.executor.hash_batch, algorithm, length,
                    items)
            except Exception:
                results = [(ERROR, None)] * len(group)
            for pending, (outcome, digest) in zip(group, results):
                self._resolve(pending, outcome, digest)
        finally:
            self._sem.release()

    def _resolve(self, pending: _Pending, outcome: str,
                 digest: Optional[bytes]) -> None:
        self._count(outcome)
        if _metrics.ARMED:
            _LATENCY.observe(time.monotonic() - pending.accepted_at,
                             algorithm=pending.algorithm)
        if not pending.future.done():
            pending.future.set_result((outcome, digest))
