"""An open-loop load generator for the serving daemon.

Open-loop means request *k* launches at ``t0 + k/rate`` whether or not
earlier requests have completed — the arrival process does not slow
down when the server does, which is what exposes real overload behavior
(a closed loop self-throttles and hides it; see how quickly p99 departs
from p50 once the pool saturates).  A concurrency cap bounds the
client's own memory, not the arrival schedule.

Each request rides its own connection, verifies the digest against
``hashlib`` when asked, and lands in a :class:`LoadReport` with
per-outcome counts and a latency distribution (p50/p99 feed
``benchmarks/bench_serve_slo.py`` and the CI smoke step).
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import random
from typing import Dict, List, Optional, Tuple

__all__ = ["LoadReport", "request", "run_load", "run_load_async"]

#: Sockets the generator will hold open at once.
_MAX_OPEN = 256


class LoadReport:
    """What came back: outcome counts, mismatches, latency quantiles."""

    def __init__(self) -> None:
        self.sent = 0
        self.outcomes: Dict[str, int] = {}
        self.mismatches = 0
        self.latencies: List[float] = []

    def count(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    @property
    def ok(self) -> int:
        return self.outcomes.get("ok", 0)

    def _quantile(self, q: float) -> float:
        """Nearest-rank quantile: the smallest sample with cumulative
        frequency >= q, i.e. ``ordered[ceil(q * n) - 1]``.

        The previous rounded ``(n - 1)``-based index under-reported
        tail quantiles at small sample counts (p99 of 67 samples landed
        on the 66th sample instead of the maximum).
        """
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = math.ceil(q * len(ordered))
        return ordered[min(len(ordered) - 1, max(0, rank - 1))]

    def p50(self) -> float:
        return self._quantile(0.50)

    def p99(self) -> float:
        return self._quantile(0.99)

    def summary(self) -> str:
        outcomes = ", ".join(f"{k}={v}" for k, v in
                             sorted(self.outcomes.items())) or "none"
        return (f"sent={self.sent} {outcomes} "
                f"mismatches={self.mismatches} "
                f"p50={self.p50() * 1000:.2f}ms "
                f"p99={self.p99() * 1000:.2f}ms")


async def _open_connection(socket_path: Optional[str],
                           host: Optional[str], port: int):
    if socket_path is not None:
        return await asyncio.open_unix_connection(socket_path)
    return await asyncio.open_connection(host, port)


async def request(path: str, body: bytes = b"", method: str = "POST",
                  socket_path: Optional[str] = None,
                  host: Optional[str] = None, port: int = 0,
                  headers: Optional[Dict[str, str]] = None,
                  timeout: float = 30.0) -> Tuple[int, bytes]:
    """One HTTP exchange with the daemon; returns (status, body).

    The shared low-level client of the load generator, the CLI and the
    serve tests — one request per connection, ``Connection: close``.
    """
    reader, writer = await _open_connection(socket_path, host, port)
    try:
        lines = [f"{method} {path} HTTP/1.1",
                 "Host: repro-serve",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    if len(status_line) < 2 or not status_line[1].isdigit():
        raise ConnectionError(f"bad response: {raw[:100]!r}")
    return int(status_line[1]), payload


def _expected_digest(algorithm: str, length: int, message: bytes) -> str:
    """Ground-truth hex digest for one verified load-test response.

    hashlib covers the FIPS 202 algorithms; the tree-hashing XOFs have
    no hashlib backend, so they verify against the repository's
    pure-Python reference path (``engine="reference"`` — the sequential
    sponge every accelerated path is differential-tested against).
    """
    if algorithm == "sha3_256":
        return hashlib.sha3_256(message).hexdigest()
    if algorithm == "shake128":
        return hashlib.shake_128(message).hexdigest(length)
    if algorithm == "shake256":
        return hashlib.shake_256(message).hexdigest(length)
    from ..keccak import kangarootwelve, parallelhash128, parallelhash256

    if algorithm == "k12":
        return kangarootwelve(message, length, engine="reference").hex()
    if algorithm == "parallelhash128":
        return parallelhash128(message, length,
                               engine="reference").hex()
    if algorithm == "parallelhash256":
        return parallelhash256(message, length,
                               engine="reference").hex()
    raise ValueError(f"unsupported algorithm: {algorithm!r}")


async def run_load_async(socket_path: Optional[str], host: Optional[str],
                          port: int, requests: int, rate: float,
                          size: int, algorithm: str, length: int,
                          deadline_ms: Optional[float], seed: int,
                          verify: bool, timeout: float) -> LoadReport:
    rng = random.Random(seed)
    report = LoadReport()
    limiter = asyncio.Semaphore(_MAX_OPEN)
    path = f"/hash/{algorithm}"
    if algorithm != "sha3_256":
        path += f"?length={length}"
    headers = {}
    if deadline_ms is not None:
        headers["X-Deadline-Ms"] = str(deadline_ms)
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def one(index: int, message: bytes) -> None:
        async with limiter:
            begin = loop.time()
            try:
                status, payload = await request(
                    path, message, socket_path=socket_path, host=host,
                    port=port, headers=headers, timeout=timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                report.count("connection_error")
                return
            elapsed = loop.time() - begin
            if status == 200:
                report.count("ok")
                report.latencies.append(elapsed)
                if verify and payload.decode("latin-1", "replace") \
                        != _expected_digest(algorithm, length, message):
                    report.mismatches += 1
            else:
                text = payload.decode("latin-1", "replace").strip()
                report.count(text.split("\n")[0] or f"http_{status}")

    tasks = []
    for index in range(requests):
        if rate > 0:
            launch_at = started + index / rate
            delay = launch_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        message = rng.getrandbits(8 * size).to_bytes(size, "little") \
            if size else b""
        report.sent += 1
        tasks.append(loop.create_task(one(index, message)))
    if tasks:
        await asyncio.gather(*tasks)
    return report


def run_load(socket_path: Optional[str] = None,
             host: Optional[str] = None, port: int = 0, *,
             requests: int = 100, rate: float = 0.0, size: int = 64,
             algorithm: str = "sha3_256", length: int = 32,
             deadline_ms: Optional[float] = None, seed: int = 0,
             verify: bool = True, timeout: float = 30.0) -> LoadReport:
    """Drive ``requests`` requests at ``rate``/s (0 = as fast as the
    concurrency cap allows) and return the :class:`LoadReport`."""
    return asyncio.run(run_load_async(
        socket_path, host, port, requests, rate, size, algorithm, length,
        deadline_ms, seed, verify, timeout))
