"""Token-bucket admission control for the serving daemon.

Admission happens *before* a request touches the queue: a bucket that
cannot produce a token means the daemon is taking traffic faster than
it agreed to, and the request is rejected immediately with an
``overloaded`` outcome (HTTP 429) instead of being buffered into an
ever-growing backlog that every later request pays for.  The bounded
request queue behind the bucket is the second gate — the bucket shapes
*rate*, the queue bounds *backlog* — and both reject explicitly.

The clock is injectable so tests are deterministic (no sleeping to
refill a bucket).
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``rate <= 0`` disables shaping entirely (every acquire succeeds),
    which is the daemon's default — the bounded queue still protects
    the pool.  The bucket starts full so a cold daemon can absorb one
    burst immediately.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate > 0 and burst <= 0:
            raise ValueError(f"burst must be positive: {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    @property
    def unlimited(self) -> bool:
        return self.rate <= 0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False means reject the request."""
        if self.unlimited:
            return True
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Current token count (diagnostics only; races with acquires)."""
        if self.unlimited:
            return float("inf")
        with self._lock:
            self._refill(self._clock())
            return self._tokens
