"""The traffic-serving layer: ``repro serve`` (ROADMAP item 1).

The library hashes batches; this package turns it into a *daemon* that
serves hash/XOF requests from many concurrent clients and stays
correct and bounded-latency when overloaded:

* :mod:`~repro.serve.admission` — token-bucket admission control; a
  request the bucket or the bounded queue cannot take is rejected with
  an explicit ``overloaded`` outcome (HTTP 429), never queued
  unboundedly.
* :mod:`~repro.serve.executor` — turns coalesced request batches into
  multi-state lock-step groups for the simulator engines: an inline
  serial executor and a pooled one over the persistent
  :class:`~repro.parallel_exec.pool.WorkerPool` (zero-copy shm arenas
  when the batch warrants it).  Per-request deadlines propagate into
  the dispatch loop — an expired group is shed *before* it reaches a
  worker — and a worker that trips its circuit breaker is replaced by
  a rolling restart instead of collapsing the pool.
* :mod:`~repro.serve.http` — a dependency-free HTTP/1.1 subset over
  asyncio streams (unix socket and TCP).
* :mod:`~repro.serve.daemon` — the asyncio front end: request
  lifecycle, batch coalescing window, graceful drain on SIGTERM (stop
  accepting, flush in-flight, checkpoint, exit 0), and the
  ``/metrics`` + ``/debug/timeline`` observability endpoints.
* :mod:`~repro.serve.loadgen` — an open-loop load generator measuring
  p50/p99 latency against a running daemon
  (``benchmarks/bench_serve_slo.py`` builds on it).
"""

from .admission import TokenBucket
from .daemon import HashServer, ServeConfig
from .executor import (
    DEADLINE_EXCEEDED,
    ERROR,
    OK,
    InlineExecutor,
    PooledExecutor,
)
from .loadgen import LoadReport, run_load

__all__ = [
    "TokenBucket",
    "HashServer",
    "ServeConfig",
    "InlineExecutor",
    "PooledExecutor",
    "LoadReport",
    "run_load",
    "OK",
    "DEADLINE_EXCEEDED",
    "ERROR",
]
