"""A dependency-free HTTP/1.1 subset over asyncio streams.

Just enough protocol for the daemon and its load generator: one request
per read, ``Content-Length`` bodies only (no chunked transfer), headers
lower-cased, bodies bounded by the caller's ``max_body``.  Anything
malformed raises :class:`ProtocolError`, which the daemon answers with
a 400 and a closed connection — a hardened service never lets a bad
frame wedge its reader.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

__all__ = ["ProtocolError", "Request", "read_request", "write_response"]

#: Hard ceilings against malicious/broken peers.
_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_LINE = 8 * 1024
_MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """The peer sent something that is not the HTTP subset we speak."""


class Request:
    """One parsed request: method, path, query string, headers, body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: str,
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def query_params(self) -> Dict[str, str]:
        """``a=1&b=2`` → ``{"a": "1", "b": "2"}`` (last key wins)."""
        params: Dict[str, str] = {}
        for part in self.query.split("&"):
            if not part:
                continue
            key, _, value = part.partition("=")
            params[key] = value
        return params


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(f"oversized line: {exc}") from exc
    if len(line) > limit:
        raise ProtocolError(f"line exceeds {limit} bytes")
    return line


async def read_request(reader: asyncio.StreamReader,
                       max_body: int) -> Optional[Request]:
    """The next request on ``reader``, or None on a clean EOF."""
    line = await _read_line(reader, _MAX_REQUEST_LINE)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"bad request line: {line[:100]!r}")
    method, target = parts[0].upper(), parts[1]
    path, _, query = target.partition("?")
    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader, _MAX_HEADER_LINE)
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ProtocolError("connection closed mid-headers")
        if len(headers) >= _MAX_HEADERS:
            raise ProtocolError(f"more than {_MAX_HEADERS} headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"bad header line: {raw[:100]!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad content-length: {length_text!r}")
    if length < 0:
        raise ProtocolError(f"bad content-length: {length}")
    if length > max_body:
        raise ProtocolError(f"body of {length} bytes exceeds the "
                            f"{max_body}-byte limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    return Request(method, path, query, headers, body)


def write_response(writer: asyncio.StreamWriter, status: int,
                   body: bytes, content_type: str = "text/plain",
                   keep_alive: bool = True) -> None:
    """Queue one response on ``writer`` (caller drains/closes)."""
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    writer.write(head.encode("latin-1") + body)
